// obs layer: log2 histogram boundaries/merge/percentile agreement with
// bt::stats::percentile, counter/gauge concurrency, the runtime kill
// switch, registry identity + JSON shape, HyperLogLog accuracy (<3% at
// 10k sessions) and merge, trace-ring sampling/wrap semantics, and trace
// stage ordering under concurrent submitters through a real Service.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "core/model.h"
#include "obs/hll.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serving/service.h"
#include "tensor/tensor.h"

namespace bt::obs {
namespace {

// Restores the kill switch on scope exit so one test's toggling can never
// silence another's recording.
struct EnabledGuard {
  ~EnabledGuard() { set_enabled(true); }
};

// Recording assertions are meaningless in a -DBT_OBS_METRICS=OFF build —
// the recording bodies are compiled out, so those tests skip rather than
// report the build mode as a failure. Structural tests (bucket math,
// registry identity) still run.
#define BT_SKIP_IF_COMPILED_OUT()  \
  if (!kCompiledIn) GTEST_SKIP() << "telemetry compiled out (BT_OBS_DISABLED)"

TEST(Histogram, BucketBoundaries) {
  EXPECT_EQ(LatencyHistogram::bucket_of(0), 0);
  EXPECT_EQ(LatencyHistogram::bucket_of(1), 1);
  EXPECT_EQ(LatencyHistogram::bucket_of(2), 2);
  EXPECT_EQ(LatencyHistogram::bucket_of(3), 2);
  EXPECT_EQ(LatencyHistogram::bucket_of(4), 3);
  EXPECT_EQ(LatencyHistogram::bucket_of(7), 3);
  EXPECT_EQ(LatencyHistogram::bucket_of(8), 4);
  EXPECT_EQ(LatencyHistogram::bucket_of(~std::uint64_t{0}),
            LatencyHistogram::kBuckets - 1);
  EXPECT_EQ(LatencyHistogram::bucket_upper(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_upper(1), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_upper(2), 3u);
  EXPECT_EQ(LatencyHistogram::bucket_upper(3), 7u);
  // Every non-zero value lands in the bucket whose bounds contain it.
  for (std::uint64_t v : {std::uint64_t{1}, std::uint64_t{2}, std::uint64_t{5},
                          std::uint64_t{100}, std::uint64_t{1000000},
                          ~std::uint64_t{0} >> 1}) {
    const int b = LatencyHistogram::bucket_of(v);
    EXPECT_LE(v, LatencyHistogram::bucket_upper(b));
    EXPECT_GT(v, LatencyHistogram::bucket_upper(b - 1));
  }
}

TEST(Histogram, RecordSnapshot) {
  BT_SKIP_IF_COMPILED_OUT();
  LatencyHistogram h;
  for (std::uint64_t v : {0ull, 1ull, 5ull, 100ull}) h.record(v);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 106u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 100u);
  EXPECT_DOUBLE_EQ(s.mean(), 106.0 / 4.0);
  // Negative seconds clamp to the zero bucket instead of wrapping.
  LatencyHistogram neg;
  neg.record_seconds(-1.0);
  EXPECT_EQ(neg.snapshot().max, 0u);
}

TEST(Histogram, PercentileAgreesWithExactWithinBucketResolution) {
  BT_SKIP_IF_COMPILED_OUT();
  Rng rng(123);
  LatencyHistogram h;
  std::vector<double> exact;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v =
        static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 20));
    h.record(v);
    exact.push_back(static_cast<double>(v));
  }
  for (double p : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    const std::uint64_t hist_p = h.percentile(p);
    const auto exact_p =
        static_cast<std::uint64_t>(stats::percentile(exact, p));
    // Same rank convention, so both land in the same log2 bucket; the
    // histogram answers with the bucket's upper bound (clamped into the
    // observed range), i.e. conservative but never more than 2x off.
    EXPECT_EQ(LatencyHistogram::bucket_of(hist_p),
              LatencyHistogram::bucket_of(exact_p))
        << "p=" << p << " hist=" << hist_p << " exact=" << exact_p;
    EXPECT_GE(hist_p, exact_p);
    EXPECT_LT(hist_p, 2 * exact_p);
  }
  EXPECT_EQ(LatencyHistogram().percentile(0.5), 0u);  // empty -> 0
}

TEST(Histogram, MergeMatchesCombinedRecording) {
  BT_SKIP_IF_COMPILED_OUT();
  Rng rng(7);
  LatencyHistogram a, b, combined;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v =
        static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 16));
    (i % 2 == 0 ? a : b).record(v);
    combined.record(v);
  }
  a.merge(b);
  const auto got = a.snapshot();
  const auto want = combined.snapshot();
  EXPECT_EQ(got.count, want.count);
  EXPECT_EQ(got.sum, want.sum);
  EXPECT_EQ(got.min, want.min);
  EXPECT_EQ(got.max, want.max);
  EXPECT_EQ(got.buckets, want.buckets);
  for (double p : {0.5, 0.99}) {
    EXPECT_EQ(got.percentile(p), want.percentile(p));
  }
}

TEST(CounterGauge, ConcurrentRecordingLosesNothing) {
  BT_SKIP_IF_COMPILED_OUT();
  Counter c;
  Gauge g;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        g.add(1.0);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  // add() is a CAS loop: contended adders all land.
  EXPECT_DOUBLE_EQ(g.value(), kThreads * kPerThread);
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
}

TEST(KillSwitch, DisabledRecordingIsANoOp) {
  BT_SKIP_IF_COMPILED_OUT();
  EnabledGuard guard;
  Counter c;
  Gauge g;
  LatencyHistogram h;
  Hll hll;
  set_enabled(false);
  EXPECT_FALSE(enabled());
  c.inc(5);
  g.set(9.0);
  h.record(42);
  hll.add("session");
  EXPECT_EQ(c.value(), 0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(hll.estimate(), 0.0);
  set_enabled(true);
  ASSERT_TRUE(enabled());
  c.inc(5);
  EXPECT_EQ(c.value(), 5);
}

TEST(Registry, NamesResolveToStableIdentities) {
  auto& reg = MetricRegistry::global();
  Counter& c1 = reg.counter("test.obs.identity.counter");
  Counter& c2 = reg.counter("test.obs.identity.counter");
  EXPECT_EQ(&c1, &c2);
  Gauge& g1 = reg.gauge("test.obs.identity.gauge");
  EXPECT_EQ(&g1, &reg.gauge("test.obs.identity.gauge"));
  // Kinds are namespaced separately: a counter and a gauge may share a name.
  EXPECT_NE(static_cast<void*>(&c1), static_cast<void*>(&reg.gauge(
                                         "test.obs.identity.counter")));
  Hll& h1 = reg.hll_prefixed("test.obs.identity.hll", "model-a");
  EXPECT_EQ(&h1, &reg.hll("test.obs.identity.hll.model-a"));
}

TEST(Registry, JsonCarriesEveryKind) {
  BT_SKIP_IF_COMPILED_OUT();
  auto& reg = MetricRegistry::global();
  reg.counter("test.obs.json.counter").inc(7);
  reg.gauge("test.obs.json.gauge").set(2.5);
  reg.histogram("test.obs.json.hist").record(100);
  reg.hll("test.obs.json.hll").add("only-session");
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"test.obs.json.counter\":7"), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.json.gauge\":2.5"), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.json.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.json.hll\":1"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(Registry, PublishMirrorsEngineStats) {
  BT_SKIP_IF_COMPILED_OUT();
  serving::EngineStats st;
  st.requests = 11;
  st.batches = 3;
  st.valid_tokens = 101;
  st.processed_tokens = 120;
  st.deadline_shed = 2;
  auto& reg = MetricRegistry::global();
  st.publish(reg, "test.obs.engine");
  EXPECT_DOUBLE_EQ(reg.gauge("test.obs.engine.requests").value(), 11.0);
  EXPECT_DOUBLE_EQ(reg.gauge("test.obs.engine.batches").value(), 3.0);
  EXPECT_DOUBLE_EQ(reg.gauge("test.obs.engine.valid_tokens").value(), 101.0);
  EXPECT_DOUBLE_EQ(reg.gauge("test.obs.engine.processed_tokens").value(),
                   120.0);
  EXPECT_DOUBLE_EQ(reg.gauge("test.obs.engine.padding_tokens").value(), 19.0);
  EXPECT_DOUBLE_EQ(reg.gauge("test.obs.engine.deadline_shed").value(), 2.0);
}

TEST(Hll, Within3PercentAt10kSessions) {
  BT_SKIP_IF_COMPILED_OUT();
  Hll hll;
  constexpr int kSessions = 10000;
  for (int i = 0; i < kSessions; ++i) {
    hll.add("session-" + std::to_string(i));
  }
  const double est = hll.estimate();
  EXPECT_NEAR(est, kSessions, 0.03 * kSessions) << "estimate " << est;
  // Duplicates never move the estimate.
  for (int i = 0; i < kSessions; ++i) {
    hll.add("session-" + std::to_string(i % 100));
  }
  EXPECT_DOUBLE_EQ(hll.estimate(), est);
}

TEST(Hll, SmallCardinalitiesAreNearExact) {
  BT_SKIP_IF_COMPILED_OUT();
  Hll hll;
  EXPECT_DOUBLE_EQ(hll.estimate(), 0.0);
  for (int i = 0; i < 50; ++i) hll.add("s" + std::to_string(i));
  // Linear counting regime: tiny cardinalities resolve almost exactly.
  EXPECT_NEAR(hll.estimate(), 50.0, 2.0);
}

TEST(Hll, MergeEstimatesTheUnion) {
  BT_SKIP_IF_COMPILED_OUT();
  Hll a, b, both;
  for (int i = 0; i < 5000; ++i) {
    a.add("left-" + std::to_string(i));
    both.add("left-" + std::to_string(i));
  }
  for (int i = 0; i < 5000; ++i) {
    b.add("right-" + std::to_string(i));
    both.add("right-" + std::to_string(i));
  }
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.estimate(), both.estimate());
  // 3 sigma of the 1.6% standard error (this fixed key set sits at ~4.4%).
  EXPECT_NEAR(a.estimate(), 10000.0, 500.0);
}

TEST(TraceRing, SamplingAndWrap) {
  BT_SKIP_IF_COMPILED_OUT();
  TraceRing ring(/*capacity=*/4, /*sample_every=*/2);
  for (int i = 0; i < 10; ++i) {
    TraceRecord rec;
    rec.request_id = i;
    ring.record(std::move(rec));
  }
  EXPECT_EQ(ring.seen(), 10);
  EXPECT_EQ(ring.recorded(), 5);  // ids 0, 2, 4, 6, 8 sampled
  const auto kept = ring.snapshot();
  ASSERT_EQ(kept.size(), 4u);  // ring capacity; oldest sampled id dropped
  EXPECT_EQ(kept[0].request_id, 2);
  EXPECT_EQ(kept[3].request_id, 8);
  ring.clear();
  EXPECT_TRUE(ring.snapshot().empty());

  TraceRing off(/*capacity=*/4, /*sample_every=*/0);
  off.record(TraceRecord{});
  EXPECT_EQ(off.recorded(), 0);
}

TEST(TraceRing, JsonlOneRecordPerLine) {
  BT_SKIP_IF_COMPILED_OUT();
  TraceRing ring(8, 1);
  for (int i = 0; i < 3; ++i) {
    TraceRecord rec;
    rec.request_id = i;
    rec.model = "m\"quoted\"";
    ring.record(std::move(rec));
  }
  const std::string jsonl = ring.to_jsonl();
  std::size_t lines = 0;
  for (char ch : jsonl) lines += ch == '\n';
  EXPECT_EQ(lines, 3u);
  EXPECT_NE(jsonl.find("\"id\":0"), std::string::npos);
  EXPECT_NE(jsonl.find("m\\\"quoted\\\""), std::string::npos);
}

// ---- stage ordering under concurrency through a real Service ---------------

core::BertConfig tiny_config() {
  core::BertConfig cfg;
  cfg.layers = 2;
  cfg.heads = 2;
  cfg.head_size = 16;
  return cfg;
}

std::shared_ptr<const core::BertModel> tiny_model() {
  static std::shared_ptr<const core::BertModel> model = [] {
    Rng rng(4242);
    return std::make_shared<const core::BertModel>(
        core::BertModel::random(tiny_config(), rng));
  }();
  return model;
}

TEST(TraceStages, MonotonicUnderConcurrentSubmitters) {
  BT_SKIP_IF_COMPILED_OUT();
  auto& ring = TraceRing::global();
  ring.configure(/*capacity=*/256, /*sample_every=*/1);

  serving::EnginePoolOptions opts;
  opts.engine.engine.policy = serving::BatchPolicy::kPacked;
  opts.engine.engine.max_batch_requests = 4;
  opts.engine.max_wait_seconds = 0.001;
  opts.replicas = 1;
  opts.threads_per_replica = 1;
  serving::ModelRegistry registry;
  registry.add("tiny", tiny_model(), opts);
  serving::Service service(std::move(registry));

  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;
  const int hidden = tiny_config().hidden();
  std::vector<std::thread> submitters;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        serving::Request req;
        req.hidden = Tensor<fp16_t>({4 + (t + i) % 5, hidden});
        req.session = "conv-" + std::to_string(t);
        try {
          service.submit(std::move(req)).get();
        } catch (...) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : submitters) th.join();
  service.stop();
  EXPECT_EQ(failures.load(), 0);

  const auto traced = ring.snapshot();
  ASSERT_EQ(traced.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (const auto& rec : traced) {
    EXPECT_LE(rec.t_submit, rec.t_window_close) << rec.to_json();
    EXPECT_LE(rec.t_window_close, rec.t_admit) << rec.to_json();
    EXPECT_LE(rec.t_admit, rec.t_dispatch) << rec.to_json();
    EXPECT_LE(rec.t_dispatch, rec.t_compute_start) << rec.to_json();
    EXPECT_LE(rec.t_compute_start, rec.t_compute_end) << rec.to_json();
    EXPECT_LE(rec.t_compute_end, rec.t_replied) << rec.to_json();
    EXPECT_EQ(rec.model, "tiny");
    EXPECT_GE(rec.batch_requests, 1);
    EXPECT_GT(rec.valid_tokens, 0);
    EXPECT_GE(rec.round_processed_tokens, rec.round_valid_tokens);
    EXPECT_GE(rec.round, 0);
  }
  ring.clear();
}

}  // namespace
}  // namespace bt::obs
