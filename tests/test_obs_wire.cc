// kStatsRequest/kStatsResponse wire frames: encode/decode round trips,
// adversarial truncation and overrun handling, the strict include_traces
// flag, and the end-to-end pull — a live net::Server answers a client's
// fetch_stats() with a registry snapshot whose request counters equal the
// service's own totals, plus a non-empty trace dump on request.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/model.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serving/service.h"
#include "tensor/tensor.h"

namespace bt::net {
namespace {

TEST(StatsFrames, RequestRoundTrip) {
  StatsRequestFrame f;
  f.correlation = 0xdeadbeefcafef00dULL;
  f.include_traces = 1;
  Buffer wire;
  encode_stats_request(wire, f);

  Decoder dec;
  dec.feed(wire.data(), wire.size());
  Frame out;
  ASSERT_EQ(dec.next(&out), DecodeStatus::kFrame);
  ASSERT_EQ(out.type, FrameType::kStatsRequest);
  EXPECT_EQ(out.stats_request.correlation, f.correlation);
  EXPECT_EQ(out.stats_request.include_traces, 1);
  EXPECT_EQ(dec.next(&out), DecodeStatus::kNeedMore);
}

TEST(StatsFrames, ResponseRoundTrip) {
  const std::string metrics = R"({"counters":{"a":1}})";
  const std::string traces = "{\"request_id\":0}\n{\"request_id\":1}\n";
  StatsResponseFrame f;
  f.correlation = 42;
  f.metrics_json = metrics;
  f.traces_jsonl = traces;
  Buffer wire;
  encode_stats_response(wire, f);

  Decoder dec;
  dec.feed(wire.data(), wire.size());
  Frame out;
  ASSERT_EQ(dec.next(&out), DecodeStatus::kFrame);
  ASSERT_EQ(out.type, FrameType::kStatsResponse);
  EXPECT_EQ(out.stats_response.correlation, 42u);
  EXPECT_EQ(std::string(out.stats_response.metrics_json), metrics);
  EXPECT_EQ(std::string(out.stats_response.traces_jsonl), traces);

  // Empty blobs are legal (a stats reply with traces declined).
  StatsResponseFrame empty;
  Buffer wire2;
  encode_stats_response(wire2, empty);
  Decoder dec2;
  dec2.feed(wire2.data(), wire2.size());
  ASSERT_EQ(dec2.next(&out), DecodeStatus::kFrame);
  EXPECT_TRUE(out.stats_response.metrics_json.empty());
  EXPECT_TRUE(out.stats_response.traces_jsonl.empty());
}

TEST(StatsFrames, EveryTruncationPrefixNeedsMore) {
  StatsRequestFrame req;
  req.correlation = 7;
  StatsResponseFrame resp;
  resp.correlation = 8;
  resp.metrics_json = "{\"gauges\":{}}";
  resp.traces_jsonl = "{}\n";
  Buffer wire;
  encode_stats_request(wire, req);
  encode_stats_response(wire, resp);

  // Feed one byte at a time: before each frame completes the decoder must
  // report kNeedMore (never error, never a partial frame); at completion it
  // must deliver the frame.
  Decoder dec;
  Frame out;
  const std::byte* bytes = wire.data();
  const std::size_t first_frame = kLengthPrefixBytes + 2 + 8 + 1;
  std::size_t frames = 0;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    dec.feed(bytes + i, 1);
    const DecodeStatus status = dec.next(&out);
    ASSERT_FALSE(dec.failed()) << "failed at byte " << i;
    const bool boundary =
        i + 1 == first_frame || i + 1 == wire.size();
    if (boundary) {
      ASSERT_EQ(status, DecodeStatus::kFrame) << "at byte " << i;
      ++frames;
    } else {
      ASSERT_EQ(status, DecodeStatus::kNeedMore) << "at byte " << i;
    }
  }
  EXPECT_EQ(frames, 2u);
  EXPECT_EQ(out.type, FrameType::kStatsResponse);
  EXPECT_EQ(std::string(out.stats_response.metrics_json),
            std::string(resp.metrics_json));
}

TEST(StatsFrames, NonBooleanIncludeTracesIsAProtocolError) {
  StatsRequestFrame f;
  f.include_traces = 2;
  Buffer wire;
  EXPECT_THROW(encode_stats_request(wire, f), std::invalid_argument);

  // A peer that bypasses the encoder still cannot sneak the bit through:
  // patch the flag byte (the frame's last byte) on a valid encoding.
  f.include_traces = 1;
  encode_stats_request(wire, f);
  std::vector<std::byte> bytes(wire.data(), wire.data() + wire.size());
  bytes.back() = std::byte{2};
  Decoder dec;
  dec.feed(bytes.data(), bytes.size());
  Frame out;
  EXPECT_EQ(dec.next(&out), DecodeStatus::kError);
  EXPECT_TRUE(dec.failed());
  EXPECT_NE(dec.error().find("include_traces"), std::string::npos);
}

TEST(StatsFrames, DeclaredLengthsMustAccountForThePayloadExactly) {
  // metrics_len promises more bytes than the payload holds -> malformed.
  {
    Buffer wire;
    const std::uint32_t payload = 2 + 8 + 4 + 4;  // room for two empty blobs
    wire.append_u32(payload);
    wire.append_u8(kWireVersion);
    wire.append_u8(static_cast<std::uint8_t>(FrameType::kStatsResponse));
    wire.append_u64(1);
    wire.append_u32(100);  // lies: no bytes follow
    wire.append_u32(0);
    Decoder dec;
    dec.feed(wire.data(), wire.size());
    Frame out;
    EXPECT_EQ(dec.next(&out), DecodeStatus::kError);
  }
  // Trailing payload bytes after the declared fields -> malformed.
  {
    Buffer wire;
    const std::uint32_t payload = 2 + 8 + 4 + 4 + 1;  // one undeclared byte
    wire.append_u32(payload);
    wire.append_u8(kWireVersion);
    wire.append_u8(static_cast<std::uint8_t>(FrameType::kStatsResponse));
    wire.append_u64(1);
    wire.append_u32(0);
    wire.append_u32(0);
    wire.append_u8(0xcc);
    Decoder dec;
    dec.feed(wire.data(), wire.size());
    Frame out;
    EXPECT_EQ(dec.next(&out), DecodeStatus::kError);
  }
  // Same for the request: an extra byte after include_traces.
  {
    Buffer wire;
    const std::uint32_t payload = 2 + 8 + 1 + 1;
    wire.append_u32(payload);
    wire.append_u8(kWireVersion);
    wire.append_u8(static_cast<std::uint8_t>(FrameType::kStatsRequest));
    wire.append_u64(1);
    wire.append_u8(0);
    wire.append_u8(0xcc);
    Decoder dec;
    dec.feed(wire.data(), wire.size());
    Frame out;
    EXPECT_EQ(dec.next(&out), DecodeStatus::kError);
  }
}

// ---- end-to-end: live server answers fetch_stats ----------------------------

core::BertConfig tiny_config() {
  core::BertConfig cfg;
  cfg.layers = 2;
  cfg.heads = 2;
  cfg.head_size = 16;
  return cfg;
}

std::shared_ptr<const core::BertModel> tiny_model() {
  static std::shared_ptr<const core::BertModel> model = [] {
    Rng rng(4242);
    return std::make_shared<const core::BertModel>(
        core::BertModel::random(tiny_config(), rng));
  }();
  return model;
}

serving::Service make_service() {
  serving::EnginePoolOptions opts;
  opts.engine.engine.policy = serving::BatchPolicy::kPacked;
  opts.engine.engine.max_batch_requests = 4;
  opts.engine.max_queue = 1024;
  opts.engine.max_wait_seconds = 0.001;
  opts.replicas = 1;
  opts.threads_per_replica = 1;
  serving::ModelRegistry registry;
  registry.add("tiny", tiny_model(), opts);
  return serving::Service(std::move(registry));
}

// Pulls the number following "<name>": out of a registry JSON blob. Enough
// JSON parsing for counters and gauges in a test.
double json_number(const std::string& json, const std::string& name) {
  const std::string key = "\"" + name + "\":";
  const std::size_t at = json.find(key);
  EXPECT_NE(at, std::string::npos) << name << " missing from " << json;
  if (at == std::string::npos) return -1;
  return std::strtod(json.c_str() + at + key.size(), nullptr);
}

TEST(StatsWire, LiveServerSnapshotMatchesServiceTotals) {
  // The frames and the pull still work in a -DBT_OBS_METRICS=OFF build,
  // but every recorded value is zero — the totals comparison needs the
  // recording paths compiled in.
  if (!obs::kCompiledIn) {
    GTEST_SKIP() << "telemetry compiled out (BT_OBS_DISABLED)";
  }
  obs::MetricRegistry::global().reset_for_testing();
  obs::TraceRing::global().configure(/*capacity=*/128, /*sample_every=*/1);

  serving::Service service = make_service();
  Server server(service);
  server.start();
  Client client(server.port());

  constexpr int kRequests = 12;
  const int hidden = tiny_config().hidden();
  std::vector<std::future<serving::Response>> futures;
  for (int i = 0; i < kRequests; ++i) {
    WireRequest req;
    req.session = "sess-" + std::to_string(i % 3);
    req.hidden = Tensor<fp16_t>({3 + i % 4, hidden});
    for (std::int64_t r = 0; r < req.hidden.dim(0); ++r) {
      for (int j = 0; j < hidden; ++j) req.hidden(r, j) = fp16_t(0.01f * j);
    }
    futures.push_back(client.submit_serving(std::move(req)));
  }
  for (auto& fut : futures) EXPECT_NO_THROW(fut.get());

  WireStats stats = client.fetch_stats(/*include_traces=*/true).get();
  ASSERT_FALSE(stats.metrics_json.empty());

  // Live scheduler counters: everything submitted completed.
  EXPECT_EQ(json_number(stats.metrics_json, "serving.requests.submitted"),
            kRequests);
  EXPECT_EQ(json_number(stats.metrics_json, "serving.requests.completed"),
            kRequests);
  EXPECT_EQ(json_number(stats.metrics_json, "serving.requests.failed"), 0);
  // Published snapshots: the registry numbers are the Service/Server
  // struct totals, not an independent count that could drift.
  const auto st = service.stats();
  EXPECT_EQ(json_number(stats.metrics_json, "serving.stats.requests"),
            static_cast<double>(st.requests));
  EXPECT_EQ(st.requests, kRequests);
  const ServerStats ss = server.stats();
  EXPECT_EQ(ss.frames_received, kRequests);
  EXPECT_EQ(json_number(stats.metrics_json, "net.server.frames_received"),
            static_cast<double>(ss.frames_received));
  EXPECT_EQ(json_number(stats.metrics_json, "net.server.stats_requests"), 1);
  // Unique sessions per model, via the HLL (linear counting at this
  // cardinality: near-exact but not integral).
  EXPECT_NEAR(json_number(stats.metrics_json, "serving.sessions.unique.tiny"),
              3.0, 0.1);

  // Traces were requested: every served request left a JSONL record.
  ASSERT_FALSE(stats.traces_jsonl.empty());
  std::size_t lines = 0;
  for (char ch : stats.traces_jsonl) lines += ch == '\n';
  EXPECT_EQ(lines, static_cast<std::size_t>(kRequests));

  // A plain pull omits traces.
  WireStats lean = client.fetch_stats(/*include_traces=*/false).get();
  EXPECT_TRUE(lean.traces_jsonl.empty());
  EXPECT_FALSE(lean.metrics_json.empty());

  client.close();
  server.stop();
  service.stop();
  obs::TraceRing::global().clear();
}

TEST(StatsWire, CloseRejectsPendingStatsPulls) {
  serving::Service service = make_service();
  Server server(service);
  server.start();
  auto client = std::make_unique<Client>(server.port());
  // Stop the server first so the pull can never resolve. Depending on when
  // the client's receiver observes the drop, fetch_stats either throws
  // ShutdownError synchronously (connection already marked closed) or hands
  // back a future that the connection-loss sweep rejects with the same
  // error. Either way the caller gets ShutdownError — never a hang.
  server.stop();
  try {
    std::future<WireStats> fut = client->fetch_stats(true);
    client->close();
    EXPECT_THROW(fut.get(), serving::ShutdownError);
  } catch (const serving::ShutdownError&) {
    SUCCEED();
  }
  client->close();
  service.stop();
}

}  // namespace
}  // namespace bt::net
