// Service/ModelRegistry: single-model bitwise equivalence with a bare
// EnginePool per batching policy under concurrent submitters, multi-model
// dispatch with provenance, sticky-session routing with warm per-session
// workspaces, the resolved-future error contract for unknown models, the
// service-wide id contract, and full-fleet shutdown drain.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/model.h"
#include "serving/service.h"
#include "tensor/tensor.h"

namespace bt::serving {
namespace {

core::BertConfig tiny_config() {
  core::BertConfig cfg;
  cfg.layers = 2;
  cfg.heads = 2;
  cfg.head_size = 16;
  return cfg;
}

std::shared_ptr<const core::BertModel> model_a() {
  static std::shared_ptr<const core::BertModel> model = [] {
    Rng rng(4242);
    return std::make_shared<const core::BertModel>(
        core::BertModel::random(tiny_config(), rng));
  }();
  return model;
}

std::shared_ptr<const core::BertModel> model_b() {
  static std::shared_ptr<const core::BertModel> model = [] {
    Rng rng(2424);
    return std::make_shared<const core::BertModel>(
        core::BertModel::random(tiny_config(), rng));
  }();
  return model;
}

struct PolicyCase {
  BatchPolicy policy;
  core::OptFlags flags;
  int group_size;
};

std::vector<PolicyCase> all_policies() {
  return {
      {BatchPolicy::kPadToMax, core::OptFlags::bias_gelu_fused(), 0},
      {BatchPolicy::kSortGroup, core::OptFlags::layernorm_fused(), 2},
      {BatchPolicy::kPacked, core::OptFlags::byte_transformer(), 0},
  };
}

EnginePoolOptions pool_options(const PolicyCase& pc, int replicas,
                               RoutePolicy route, int max_batch_requests,
                               double max_wait_seconds) {
  EnginePoolOptions opts;
  opts.engine.engine.policy = pc.policy;
  opts.engine.engine.flags = pc.flags;
  opts.engine.engine.group_size = pc.group_size > 0 ? pc.group_size : 4;
  opts.engine.engine.max_batch_requests = max_batch_requests;
  opts.engine.max_wait_seconds = max_wait_seconds;
  opts.replicas = replicas;
  opts.route = route;
  opts.threads_per_replica = 1;
  return opts;
}

void expect_bits_equal(const Tensor<fp16_t>& got, const Tensor<fp16_t>& want) {
  ASSERT_EQ(got.rank(), 2);
  ASSERT_EQ(got.dim(0), want.dim(0));
  ASSERT_EQ(got.dim(1), want.dim(1));
  for (std::int64_t s = 0; s < got.dim(0); ++s) {
    for (std::int64_t j = 0; j < got.dim(1); ++j) {
      ASSERT_EQ(got(s, j).bits(), want(s, j).bits())
          << "row " << s << " col " << j;
    }
  }
}

// ---- registry ---------------------------------------------------------------

TEST(ModelRegistry, RegistersInOrderAndValidates) {
  ModelRegistry registry;
  registry.add("a", model_a()).add("b", model_b());
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_TRUE(registry.contains("a"));
  EXPECT_FALSE(registry.contains("c"));
  ASSERT_EQ(registry.names().size(), 2u);
  EXPECT_EQ(registry.names()[0], "a");
  EXPECT_EQ(registry.names()[1], "b");
  EXPECT_EQ(registry.spec("b").model.get(), model_b().get());
  EXPECT_THROW(registry.spec("c"), std::out_of_range);

  EXPECT_THROW(registry.add("a", model_a()), std::invalid_argument);  // dup
  EXPECT_THROW(registry.add("", model_a()), std::invalid_argument);   // empty
  EXPECT_THROW(registry.add("c", nullptr), std::invalid_argument);    // null
}

// Registering one model under two names shares the one physical weight copy
// (the pack-once contract holds per model, not per name).
TEST(ModelRegistry, AliasedNamesShareOneWeightCopy) {
  const PolicyCase pc = all_policies()[2];
  ModelRegistry registry;
  registry.add("fast", model_a(),
               pool_options(pc, 1, RoutePolicy::kRoundRobin, 8, 0.0));
  registry.add("batch", model_a(),
               pool_options(pc, 2, RoutePolicy::kRoundRobin, 8, 0.0));
  Service service(std::move(registry));
  EXPECT_EQ(service.pool("fast").model().weights_ptr().get(),
            service.pool("batch").model().weights_ptr().get());
  service.stop();
}

// ---- construction -----------------------------------------------------------

TEST(Service, RejectsInconsistentConfiguration) {
  EXPECT_THROW(Service(ModelRegistry{}), std::invalid_argument);  // empty

  {
    ModelRegistry registry;
    registry.add("a", model_a());
    ServiceOptions opts;
    opts.default_model = "missing";
    EXPECT_THROW(Service(std::move(registry), opts), std::invalid_argument);
  }
  {
    // Per-pool validation surfaces through the Service constructor.
    ModelRegistry registry;
    registry.add("a", model_a(),
                 pool_options(all_policies()[2], 0, RoutePolicy::kRoundRobin,
                              8, 0.0));
    EXPECT_THROW(Service(std::move(registry)), std::invalid_argument);
  }
}

TEST(Service, DefaultModelIsFirstRegisteredUnlessOverridden) {
  const PolicyCase pc = all_policies()[2];
  {
    ModelRegistry registry;
    registry.add("a", model_a(), pool_options(pc, 1, RoutePolicy::kRoundRobin,
                                              8, 0.0));
    registry.add("b", model_b(), pool_options(pc, 1, RoutePolicy::kRoundRobin,
                                              8, 0.0));
    Service service(std::move(registry));
    EXPECT_EQ(service.default_model(), "a");
    Rng rng(3);
    Response r = service
                     .submit(Tensor<fp16_t>::random_normal(
                         {4, service.pool("a").hidden()}, rng))
                     .get();
    EXPECT_EQ(r.model, "a");
    service.stop();
  }
  {
    ModelRegistry registry;
    registry.add("a", model_a(), pool_options(pc, 1, RoutePolicy::kRoundRobin,
                                              8, 0.0));
    registry.add("b", model_b(), pool_options(pc, 1, RoutePolicy::kRoundRobin,
                                              8, 0.0));
    ServiceOptions opts;
    opts.default_model = "b";
    Service service(std::move(registry), opts);
    EXPECT_EQ(service.default_model(), "b");
    Rng rng(3);
    Response r = service
                     .submit(Tensor<fp16_t>::random_normal(
                         {4, service.pool("b").hidden()}, rng))
                     .get();
    EXPECT_EQ(r.model, "b");
    service.stop();
  }
}

// ---- single-model bitwise equivalence ---------------------------------------

// The acceptance bar: a Service with one registered model and sticky
// sessions disabled adds a name lookup and a service-level id — outputs are
// bitwise identical to the same requests on a bare EnginePool, for every
// batching policy, under concurrent submitters.
TEST(Service, SingleModelBitMatchesBareEnginePoolPerPolicyUnderConcurrentSubmitters) {
  constexpr int kThreads = 3;
  constexpr int kPerThread = 4;
  constexpr int kTotal = kThreads * kPerThread;
  const std::int64_t h = model_a()->config().hidden();

  for (const PolicyCase& pc : all_policies()) {
    const EnginePoolOptions opts = pool_options(
        pc, /*replicas=*/2, RoutePolicy::kLeastOutstandingTokens,
        /*max_batch_requests=*/4, /*max_wait=*/0.0005);
    ModelRegistry registry;
    registry.add("only", model_a(), opts);
    Service service(std::move(registry));

    std::vector<Tensor<fp16_t>> inputs(kTotal);
    std::vector<std::future<Response>> futures(kTotal);
    std::vector<std::thread> submitters;
    for (int t = 0; t < kThreads; ++t) {
      submitters.emplace_back([&, t] {
        for (int j = 0; j < kPerThread; ++j) {
          const std::size_t slot = static_cast<std::size_t>(t * kPerThread + j);
          const int len = 2 + 3 * (static_cast<int>(slot) % 5);
          Rng rng(1000 + t * 100 + j);
          auto hidden = Tensor<fp16_t>::random_normal({len, h}, rng);
          inputs[slot] = hidden.clone();
          Request req;
          req.hidden = std::move(hidden);
          futures[slot] = service.submit(std::move(req));
        }
      });
    }
    for (auto& s : submitters) s.join();

    // Reference: identical request contents on a bare EnginePool with the
    // same options (caller ids = slots so responses map back).
    EnginePool reference(model_a(), opts);
    std::vector<std::future<Response>> want(kTotal);
    for (int slot = 0; slot < kTotal; ++slot) {
      want[static_cast<std::size_t>(slot)] = reference.submit(
          Request{slot, inputs[static_cast<std::size_t>(slot)].clone()});
    }

    for (int slot = 0; slot < kTotal; ++slot) {
      Response got = futures[static_cast<std::size_t>(slot)].get();
      Response ref = want[static_cast<std::size_t>(slot)].get();
      expect_bits_equal(got.output, ref.output);
      EXPECT_EQ(got.model, "only");  // provenance names the registry key
      EXPECT_GE(got.replica, 0);
      EXPECT_LT(got.replica, 2);
    }
    service.stop();
    reference.stop();
    EXPECT_EQ(service.stats().requests, kTotal);
    EXPECT_EQ(service.pending(), 0u);
  }
}

// ---- multi-model dispatch ---------------------------------------------------

// Request::model selects the replica group: the same input produces each
// model's own output (bit-matching a direct EnginePool on that model), and
// the per-model stats account separately.
TEST(Service, DispatchesByModelKeyWithPerModelAccounting) {
  const PolicyCase pc = all_policies()[2];
  const EnginePoolOptions opts =
      pool_options(pc, 1, RoutePolicy::kRoundRobin, 8, 0.0);
  ModelRegistry registry;
  registry.add("a", model_a(), opts);
  registry.add("b", model_b(), opts);
  Service service(std::move(registry));
  const std::int64_t h = model_a()->config().hidden();

  Rng rng(11);
  const auto input = Tensor<fp16_t>::random_normal({6, h}, rng);
  Request to_a;
  to_a.hidden = input.clone();
  to_a.model = "a";
  Request to_b;
  to_b.hidden = input.clone();
  to_b.model = "b";
  Response ra = service.submit(std::move(to_a)).get();
  Response rb = service.submit(std::move(to_b)).get();
  EXPECT_EQ(ra.model, "a");
  EXPECT_EQ(rb.model, "b");

  EnginePool direct_a(model_a(), opts);
  EnginePool direct_b(model_b(), opts);
  expect_bits_equal(ra.output, direct_a.submit(input.clone()).get().output);
  expect_bits_equal(rb.output, direct_b.submit(input.clone()).get().output);
  direct_a.stop();
  direct_b.stop();

  EXPECT_EQ(service.stats("a").requests, 1);
  EXPECT_EQ(service.stats("b").requests, 1);
  EXPECT_EQ(service.stats().requests, 2);
  EXPECT_THROW(service.stats("c"), std::out_of_range);
  EXPECT_THROW(service.pool("c"), std::out_of_range);
  service.stop();
}

// ---- error paths ------------------------------------------------------------

// An unknown model is a routing error: submit() must not throw (and must
// not burn the caller-supplied id) — the returned future is already
// resolved with UnknownModelError, the same async path every other
// per-request failure travels.
TEST(Service, UnknownModelResolvesTheFutureWithErrorInsteadOfThrowing) {
  ModelRegistry registry;
  registry.add("a", model_a(),
               pool_options(all_policies()[2], 1, RoutePolicy::kRoundRobin, 8,
                            0.0));
  Service service(std::move(registry));
  const std::int64_t h = service.pool("a").hidden();
  Rng rng(12);

  Request req;
  req.id = 5;
  req.hidden = Tensor<fp16_t>::random_normal({4, h}, rng);
  req.model = "nope";
  std::future<Response> fut = service.submit(std::move(req));  // no throw
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_THROW(fut.get(), UnknownModelError);

  // The rejected submit burned nothing: id 5 is still free.
  Request retry;
  retry.id = 5;
  retry.hidden = Tensor<fp16_t>::random_normal({4, h}, rng);
  retry.model = "a";
  EXPECT_EQ(service.submit(std::move(retry)).get().id, 5);
  EXPECT_EQ(service.stats().requests, 1);

  // Programming errors are not masked by an unknown model name: the
  // model-independent checks (shape, duplicate id) still throw.
  Request bad_shape;
  bad_shape.hidden = Tensor<fp16_t>::zeros({4});  // rank 1
  bad_shape.model = "nope";
  EXPECT_THROW(service.submit(std::move(bad_shape)), std::invalid_argument);
  Request dup_id;
  dup_id.id = 5;  // issued above
  dup_id.hidden = Tensor<fp16_t>::random_normal({4, h}, rng);
  dup_id.model = "nope";
  EXPECT_THROW(service.submit(std::move(dup_id)), std::invalid_argument);
  service.stop();
}

// Ids are service-wide: a caller-supplied id used for one model cannot be
// reused for a different model, exactly as within one pool.
TEST(Service, DuplicateRequestIdAcrossModelsIsRejected) {
  const EnginePoolOptions opts =
      pool_options(all_policies()[2], 1, RoutePolicy::kRoundRobin, 8, 0.0);
  ModelRegistry registry;
  registry.add("a", model_a(), opts);
  registry.add("b", model_b(), opts);
  Service service(std::move(registry));
  const std::int64_t h = service.pool("a").hidden();
  Rng rng(13);

  Request first;
  first.id = 7;
  first.hidden = Tensor<fp16_t>::random_normal({3, h}, rng);
  first.model = "a";
  auto f = service.submit(std::move(first));

  Request dup;
  dup.id = 7;
  dup.hidden = Tensor<fp16_t>::random_normal({3, h}, rng);
  dup.model = "b";  // different model, same id: still rejected
  EXPECT_THROW(service.submit(std::move(dup)), std::invalid_argument);

  // Auto ids stay disjoint from caller-supplied ones service-wide, so two
  // models' responses can never carry the same id.
  Request to_b;
  to_b.hidden = Tensor<fp16_t>::random_normal({3, h}, rng);
  to_b.model = "b";
  EXPECT_EQ(service.submit(std::move(to_b)).get().id, 8);
  EXPECT_EQ(f.get().id, 7);

  // Malformed tensors throw the Engine contract's error.
  EXPECT_THROW(service.submit(Tensor<fp16_t>::zeros({4})),
               std::invalid_argument);
  service.stop();
}

// ---- lifecycle --------------------------------------------------------------

TEST(Service, StopDrainsEveryRegisteredModelsPools) {
  const EnginePoolOptions opts = pool_options(
      all_policies()[2], 2, RoutePolicy::kRoundRobin, 8, /*max_wait=*/30.0);
  ModelRegistry registry;
  registry.add("a", model_a(), opts);
  registry.add("b", model_b(), opts);
  Service service(std::move(registry));
  const std::int64_t h = service.pool("a").hidden();
  Rng rng(14);

  // Every replica of every model holds an open 30 s window: stop() must
  // drain them all before returning.
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 8; ++i) {
    Request req;
    req.hidden = Tensor<fp16_t>::random_normal({1 + i % 4, h}, rng);
    req.model = i % 2 == 0 ? "a" : "b";
    futures.push_back(service.submit(std::move(req)));
  }
  service.stop();
  service.stop();  // idempotent
  EXPECT_TRUE(service.stopped());
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready)
        << "stop() returned before some model's pool finished draining";
    f.get();
  }
  EXPECT_EQ(service.pending(), 0u);
  EXPECT_EQ(service.pending_tokens(), 0);
  EXPECT_EQ(service.stats().requests, 8);
  EXPECT_EQ(service.stats("a").requests, 4);
  EXPECT_EQ(service.stats("b").requests, 4);

  EXPECT_THROW(service.submit(Tensor<fp16_t>::random_normal({3, h}, rng)),
               std::runtime_error);
}

// ---- sticky sessions --------------------------------------------------------

// The session contract end to end: every request of a session lands on the
// replica that served its first request (Response::replica + the exposed
// pin agree), and the replica's per-session workspace makes follow-up
// rounds allocation-free.
TEST(Service, StickySessionPinsReplicaAndReusesItsWorkspace) {
  EnginePoolOptions opts =
      pool_options(all_policies()[2], /*replicas=*/2,
                   RoutePolicy::kStickySession, 8, /*max_wait=*/0.0);
  ModelRegistry registry;
  registry.add("a", model_a(), opts);
  Service service(std::move(registry));
  const std::int64_t h = service.pool("a").hidden();
  Rng rng(15);

  const auto turn = [&](const char* session, int len) {
    Request req;
    req.hidden = Tensor<fp16_t>::random_normal({len, h}, rng);
    req.session = session;
    return service.submit(std::move(req)).get();  // sequential: one round each
  };

  const Response r1 = turn("conv", 9);
  ASSERT_TRUE(r1.session.has_value());
  EXPECT_EQ(*r1.session, "conv");
  const auto pin = service.pool("a").pinned_replica("conv");
  ASSERT_TRUE(pin.has_value());
  EXPECT_EQ(static_cast<int>(*pin), r1.replica);
  const EngineStats s1 = service.stats();
  EXPECT_EQ(s1.session_ws_misses, 1);
  EXPECT_GT(s1.workspace_allocations, 0);

  for (int i = 0; i < 3; ++i) {
    const Response r = turn("conv", 9);
    EXPECT_EQ(r.replica, r1.replica) << "session hopped replicas";
  }
  const EngineStats s2 = service.stats();
  EXPECT_EQ(s2.session_ws_hits, 3);
  EXPECT_EQ(s2.session_ws_misses, 1);
  // The warm-workspace proof: three follow-up rounds, zero new allocations.
  EXPECT_EQ(s2.workspace_allocations, s1.workspace_allocations);

  const auto sr = service.session_route_stats();
  EXPECT_EQ(sr.session_requests, 4);
  EXPECT_EQ(sr.sticky_hits, 3);  // everything after the pin-creating first
  service.stop();
}

// session_workspaces = -1 (auto) gave the sticky pool its cache above; an
// explicit 0 is a deliberate off and must stay off even under sticky
// routing.
TEST(Service, ExplicitZeroKeepsSessionWorkspacesOffUnderStickyRouting) {
  EnginePoolOptions opts =
      pool_options(all_policies()[2], /*replicas=*/2,
                   RoutePolicy::kStickySession, 8, /*max_wait=*/0.0);
  opts.engine.engine.session_workspaces = 0;
  ModelRegistry registry;
  registry.add("a", model_a(), opts);
  Service service(std::move(registry));
  const std::int64_t h = service.pool("a").hidden();
  Rng rng(16);

  for (int i = 0; i < 2; ++i) {
    Request req;
    req.hidden = Tensor<fp16_t>::random_normal({5, h}, rng);
    req.session = "conv";
    service.submit(std::move(req)).get();
  }
  const EngineStats st = service.stats();
  EXPECT_EQ(st.session_ws_hits, 0);    // routing is sticky, cache is off
  EXPECT_EQ(st.session_ws_misses, 0);
  EXPECT_EQ(service.session_route_stats().sticky_hits, 1);
  service.stop();
}

}  // namespace
}  // namespace bt::serving
