// Shared helpers for the test suite: FP64 reference implementations of every
// pipeline stage, tensor conversion utilities, and input generators.
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "attention/attention.h"
#include "common/half.h"
#include "common/numeric.h"
#include "common/rng.h"
#include "core/padding.h"
#include "core/weights.h"
#include "kernels/layernorm.h"
#include "tensor/tensor.h"

namespace bt::test {

// ---- conversions ----------------------------------------------------------

template <typename T>
std::vector<double> to_f64(std::span<const T> src) {
  std::vector<double> out(src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    out[i] = static_cast<double>(load_f32(src[i]));
  }
  return out;
}

template <typename T>
std::vector<double> to_f64(const Tensor<T>& t) {
  return to_f64(t.view());
}

inline double max_abs_diff_span(std::span<const double> a,
                                std::span<const double> b) {
  double m = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

// ---- input generators ------------------------------------------------------

// Padded hidden states [batch*max_seq, hidden] with zero padding rows, plus
// offsets, from explicit lengths.
struct VarLenInput {
  core::SeqOffsets off;
  Tensor<fp16_t> padded;  // [batch*max_seq, hidden]
};

inline VarLenInput make_varlen_input(par::Device& dev,
                                     std::span<const int> seq_lens,
                                     int max_seq, int hidden, Rng& rng,
                                     float stddev = 1.0f) {
  VarLenInput in;
  in.off = core::build_seq_offsets(dev, seq_lens, max_seq);
  in.padded = Tensor<fp16_t>::zeros(
      {static_cast<std::int64_t>(seq_lens.size()) * max_seq, hidden});
  for (std::int64_t v = 0; v < in.off.valid_count; ++v) {
    const std::int64_t row = in.off.packed_to_padded[static_cast<std::size_t>(v)];
    for (int j = 0; j < hidden; ++j) {
      in.padded(row, j) = fp16_t(rng.normal(0.0f, stddev));
    }
  }
  return in;
}

// ---- FP64 references -------------------------------------------------------

// C[m,n] = A[m,k] @ B[k,n] (+bias per column, optional tanh-GELU).
inline void ref_gemm_rows(const std::vector<double>& a,
                          const std::vector<double>& b, std::vector<double>& c,
                          std::int64_t m, std::int64_t n, std::int64_t k,
                          const std::vector<double>* bias = nullptr,
                          bool gelu = false) {
  c.assign(static_cast<std::size_t>(m * n), 0.0);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t p = 0; p < k; ++p) {
      const double av = a[static_cast<std::size_t>(i * k + p)];
      if (av == 0.0) continue;
      for (std::int64_t j = 0; j < n; ++j) {
        c[static_cast<std::size_t>(i * n + j)] +=
            av * b[static_cast<std::size_t>(p * n + j)];
      }
    }
  }
  if (bias != nullptr) {
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        double v = c[static_cast<std::size_t>(i * n + j)] +
                   (*bias)[static_cast<std::size_t>(j)];
        if (gelu) {
          // Must match the kernels' tanh approximation, not erf.
          const double x = v;
          v = 0.5 * x *
              (1.0 + std::tanh(0.7978845608028654 *
                               (x + 0.044715 * x * x * x)));
        }
        c[static_cast<std::size_t>(i * n + j)] = v;
      }
    }
  }
}

// out = layernorm(x + bias + residual) * gamma + beta, rows x hidden.
inline void ref_add_bias_residual_layernorm(
    const std::vector<double>& x, const std::vector<double>& residual,
    const std::vector<double>& bias, const std::vector<double>& gamma,
    const std::vector<double>& beta, std::vector<double>& out,
    std::int64_t rows, std::int64_t hidden) {
  out.assign(static_cast<std::size_t>(rows * hidden), 0.0);
  for (std::int64_t r = 0; r < rows; ++r) {
    double mean = 0;
    std::vector<double> buf(static_cast<std::size_t>(hidden));
    for (std::int64_t j = 0; j < hidden; ++j) {
      buf[static_cast<std::size_t>(j)] =
          x[static_cast<std::size_t>(r * hidden + j)] +
          bias[static_cast<std::size_t>(j)] +
          residual[static_cast<std::size_t>(r * hidden + j)];
      mean += buf[static_cast<std::size_t>(j)];
    }
    mean /= static_cast<double>(hidden);
    double var = 0;
    for (std::int64_t j = 0; j < hidden; ++j) {
      const double d = buf[static_cast<std::size_t>(j)] - mean;
      var += d * d;
    }
    var /= static_cast<double>(hidden);
    const double inv = 1.0 / std::sqrt(var + kernels::kLayerNormEps);
    for (std::int64_t j = 0; j < hidden; ++j) {
      out[static_cast<std::size_t>(r * hidden + j)] =
          (buf[static_cast<std::size_t>(j)] - mean) * inv *
              gamma[static_cast<std::size_t>(j)] +
          beta[static_cast<std::size_t>(j)];
    }
  }
}

// FP64 reference of a full BERT encoder layer on the *padded* layout.
// Weights are read from the FP16 LayerWeights (so the reference sees exactly
// the same rounded weights the kernels do). Padding rows of `input` must be
// zero; padding rows of the returned tensor carry whatever the padded
// pipeline would produce and must not be compared (compare valid rows only).
std::vector<double> ref_encoder_layer(const core::BertConfig& cfg,
                                      const core::LayerWeights& w,
                                      const std::vector<double>& input,
                                      const core::SeqOffsets& off);

// Compares only valid-token rows between a padded FP16 tensor and a padded
// FP64 reference; returns the max abs diff over valid rows.
inline double max_diff_valid_rows(const Tensor<fp16_t>& got,
                                  const std::vector<double>& want,
                                  const core::SeqOffsets& off,
                                  std::int64_t hidden) {
  double m = 0;
  for (std::int64_t v = 0; v < off.valid_count; ++v) {
    const std::int64_t r = off.packed_to_padded[static_cast<std::size_t>(v)];
    for (std::int64_t j = 0; j < hidden; ++j) {
      m = std::max(m, std::abs(static_cast<double>(load_f32(
                                   got.data()[r * hidden + j])) -
                               want[static_cast<std::size_t>(r * hidden + j)]));
    }
  }
  return m;
}

}  // namespace bt::test
