// Fault-tolerance under injected chaos: the soak drives real wire traffic
// through a seeded fault schedule — short reads/writes, a client
// connection reset, a replica whose compute fails repeatedly — and
// asserts the resilience machinery makes failure invisible: every request
// resolves exactly once with output bitwise-identical to a fault-free
// run, the failing replica is quarantined and later readmitted through a
// half-open probe. The unit tests pin down each mechanism alone: the
// deterministic retry backoff schedule, the breaker state machine,
// sticky-pin migration, idle reaping, the slow-peer write cap, and the
// per-connection in-flight cap.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "core/model.h"
#include "net/client.h"
#include "net/server.h"
#include "serving/error.h"
#include "serving/pool.h"
#include "serving/router.h"
#include "serving/service.h"
#include "tensor/tensor.h"

namespace bt {
namespace {

core::BertConfig tiny_config() {
  core::BertConfig cfg;
  cfg.layers = 2;
  cfg.heads = 2;
  cfg.head_size = 16;
  return cfg;
}

std::shared_ptr<const core::BertModel> tiny_model() {
  static std::shared_ptr<const core::BertModel> model = [] {
    Rng rng(4242);
    return std::make_shared<const core::BertModel>(
        core::BertModel::random(tiny_config(), rng));
  }();
  return model;
}

serving::EnginePoolOptions pool_options(int replicas) {
  serving::EnginePoolOptions opts;
  opts.engine.engine.policy = serving::BatchPolicy::kPacked;
  opts.engine.engine.max_batch_requests = 4;
  opts.engine.max_wait_seconds = 0.0005;
  opts.replicas = replicas;
  opts.threads_per_replica = 1;
  return opts;
}

Tensor<fp16_t> make_hidden(int rows, int salt) {
  const int hidden = tiny_config().hidden();
  Tensor<fp16_t> t({rows, hidden});
  for (int s = 0; s < rows; ++s) {
    for (int j = 0; j < hidden; ++j) {
      t(s, j) = fp16_t(0.01f * j + 0.001f * ((salt + s) % 13));
    }
  }
  return t;
}

void expect_bits_equal(const Tensor<fp16_t>& got, const Tensor<fp16_t>& want) {
  ASSERT_EQ(got.dim(0), want.dim(0));
  ASSERT_EQ(got.dim(1), want.dim(1));
  ASSERT_EQ(std::memcmp(got.data(), want.data(),
                        static_cast<std::size_t>(got.dim(0)) *
                            static_cast<std::size_t>(got.dim(1)) * 2),
            0);
}

// ---- retry backoff schedule -------------------------------------------------

TEST(Chaos, RetryBackoffIsDeterministicAndBounded) {
  net::RetryPolicy p;
  p.initial_backoff_ms = 5.0;
  p.backoff_multiplier = 2.0;
  p.max_backoff_ms = 40.0;
  p.jitter = 0.25;
  p.seed = 9;

  for (int attempt = 1; attempt <= 6; ++attempt) {
    const double b = net::retry_backoff_ms(p, 123, attempt);
    // Pure function: the schedule the client will use is assertable.
    EXPECT_EQ(b, net::retry_backoff_ms(p, 123, attempt));
    // Exponential base, capped, jittered by at most +/- 25%.
    const double base =
        std::min(5.0 * std::pow(2.0, attempt - 1), p.max_backoff_ms);
    EXPECT_GE(b, base * (1.0 - p.jitter));
    EXPECT_LE(b, base * (1.0 + p.jitter));
  }

  // Jitter decorrelates across requests and seeds (else synchronized
  // retries re-stampede the server).
  EXPECT_NE(net::retry_backoff_ms(p, 123, 2), net::retry_backoff_ms(p, 124, 2));
  net::RetryPolicy q = p;
  q.seed = 10;
  EXPECT_NE(net::retry_backoff_ms(p, 123, 2), net::retry_backoff_ms(q, 123, 2));

  // Zero jitter collapses to the exact exponential.
  p.jitter = 0.0;
  EXPECT_EQ(net::retry_backoff_ms(p, 123, 1), 5.0);
  EXPECT_EQ(net::retry_backoff_ms(p, 123, 2), 10.0);
  EXPECT_EQ(net::retry_backoff_ms(p, 123, 3), 20.0);
  EXPECT_EQ(net::retry_backoff_ms(p, 123, 4), 40.0);
  EXPECT_EQ(net::retry_backoff_ms(p, 123, 5), 40.0);  // capped
}

// ---- circuit breaker --------------------------------------------------------

TEST(Chaos, BreakerQuarantinesProbesAndReadmits) {
  // Script: replica 0's next 3 compute rounds fail, then it recovers.
  fault::Injector inj(1);
  fault::PointConfig cfg;
  cfg.probability = 1.0;
  cfg.instance = 0;
  cfg.max_fires = 3;
  inj.arm("serving.compute.fail", cfg);
  fault::ScopedInjector scope(inj);

  serving::EnginePoolOptions opts = pool_options(/*replicas=*/2);
  opts.breaker.failure_threshold = 3;
  opts.breaker.quarantine_seconds = 0.05;
  serving::EnginePool pool(tiny_model(), opts);

  // Sequential submits tie-break to replica 0: three failing rounds in a
  // row, each surfacing as the retryable kInternal.
  for (int i = 0; i < 3; ++i) {
    auto f = pool.submit(make_hidden(2, i));
    EXPECT_THROW(f.get(), serving::InternalError);
  }
  const serving::ReplicaHealth sick = pool.replica_health(0);
  EXPECT_EQ(sick.failed, 3);
  EXPECT_EQ(sick.consecutive_failures, 3);

  // The next route trips the breaker and lands on the healthy replica.
  auto ok = pool.submit(make_hidden(2, 7));
  EXPECT_EQ(ok.get().error, serving::ErrorCode::kOk);
  serving::EnginePool::BreakerStats bs = pool.breaker_stats();
  EXPECT_EQ(bs.quarantines, 1);
  EXPECT_EQ(bs.readmissions, 0);

  // Past the cooldown the breaker goes half-open; the next submit is the
  // probe, it succeeds (the fault budget is spent), and the replica is
  // readmitted.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  auto probe = pool.submit(make_hidden(2, 8));
  EXPECT_EQ(probe.get().error, serving::ErrorCode::kOk);
  bs = pool.breaker_stats();
  EXPECT_EQ(bs.quarantines, 1);
  EXPECT_GE(bs.probes, 1);
  EXPECT_EQ(bs.readmissions, 1);

  // Readmitted replica serves again, and success cleared the streak.
  EXPECT_EQ(pool.submit(make_hidden(2, 9)).get().error,
            serving::ErrorCode::kOk);
  EXPECT_EQ(pool.replica_health(0).consecutive_failures, 0);
  pool.stop();
}

TEST(Chaos, BreakerReQuarantinesWhenTheProbeFails) {
  // Unbounded failure: the probe fails too, so the replica goes straight
  // back to quarantine and traffic keeps flowing to the healthy one.
  fault::Injector inj(1);
  fault::PointConfig cfg;
  cfg.probability = 1.0;
  cfg.instance = 0;
  inj.arm("serving.compute.fail", cfg);
  fault::ScopedInjector scope(inj);

  serving::EnginePoolOptions opts = pool_options(/*replicas=*/2);
  opts.breaker.failure_threshold = 2;
  opts.breaker.quarantine_seconds = 0.05;
  serving::EnginePool pool(tiny_model(), opts);

  for (int i = 0; i < 2; ++i) {
    EXPECT_THROW(pool.submit(make_hidden(2, i)).get(),
                 serving::InternalError);
  }
  EXPECT_EQ(pool.submit(make_hidden(2, 3)).get().error,
            serving::ErrorCode::kOk);  // routed around the quarantine
  ASSERT_EQ(pool.breaker_stats().quarantines, 1);

  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_THROW(pool.submit(make_hidden(2, 4)).get(),
               serving::InternalError);  // the half-open probe fails
  const serving::EnginePool::BreakerStats bs = pool.breaker_stats();
  EXPECT_GE(bs.probes, 1);
  EXPECT_EQ(bs.readmissions, 0);
  EXPECT_GE(bs.quarantines, 2);  // re-quarantined

  // Healthy replica still serves while replica 0 sits in quarantine.
  EXPECT_EQ(pool.submit(make_hidden(2, 5)).get().error,
            serving::ErrorCode::kOk);
  pool.stop();
}

// ---- sticky-pin migration ---------------------------------------------------

TEST(Chaos, StickyPinMigratesOffUnavailableReplica) {
  auto router = serving::make_router(serving::RoutePolicy::kStickySession);
  std::vector<serving::ReplicaLoad> loads(3);
  bool pinned = false;

  // Session pins by load to replica 0; the follow-up is a pin hit.
  EXPECT_EQ(router->pick(loads, {10, "s"}, &pinned), 0u);
  EXPECT_FALSE(pinned);
  EXPECT_EQ(router->pick(loads, {10, "s"}, &pinned), 0u);
  EXPECT_TRUE(pinned);

  // Replica 0 quarantined: the pin is dropped and the session re-pins by
  // load among the available replicas (replica 2 is the least loaded).
  loads[0].available = false;
  loads[1].outstanding_tokens = 5;
  EXPECT_EQ(router->pick(loads, {10, "s"}, &pinned), 2u);
  EXPECT_FALSE(pinned);  // a migration is a fresh pin, not a hit

  // The new pin sticks — including after replica 0 is readmitted (no
  // flap-back; per-session workspace now lives on replica 2).
  EXPECT_EQ(router->pick(loads, {10, "s"}, &pinned), 2u);
  EXPECT_TRUE(pinned);
  loads[0].available = true;
  EXPECT_EQ(router->pick(loads, {10, "s"}, &pinned), 2u);
  EXPECT_TRUE(pinned);
  EXPECT_EQ(router->pinned("s"), std::optional<std::size_t>(2));
}

// ---- server connection defenses ---------------------------------------------

serving::Service make_service(serving::EnginePoolOptions opts) {
  serving::ModelRegistry registry;
  registry.add("tiny", tiny_model(), opts);
  return serving::Service(std::move(registry));
}

// A connection that never sends anything — idle-timeout prey.
struct QuietConn {
  int fd = -1;
  explicit QuietConn(std::uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
        0) {
      ::close(fd);
      fd = -1;
    }
  }
  ~QuietConn() {
    if (fd >= 0) ::close(fd);
  }
};

TEST(Chaos, IdleConnectionsAreReaped) {
  auto service = make_service(pool_options(1));
  net::ServerOptions sopts;
  sopts.idle_timeout_seconds = 0.05;
  sopts.poll_timeout_ms = 10;
  net::Server server(service, sopts);
  server.start();

  QuietConn quiet(server.port());
  ASSERT_GE(quiet.fd, 0);
  // The server closes the quiet connection once it has been silent past
  // the timeout: the blocking recv observes a clean EOF.
  char sink[16];
  EXPECT_EQ(::recv(quiet.fd, sink, sizeof sink, 0), 0);
  EXPECT_GE(server.stats().idle_disconnects, 1);

  // The loop is fine — a working client still round-trips (and is not
  // reaped while its request is in flight).
  net::Client client(server.port());
  net::WireRequest req;
  req.hidden = make_hidden(2, 0);
  EXPECT_EQ(client.submit(std::move(req)).get().error,
            serving::ErrorCode::kOk);

  client.close();
  server.stop();
  service.stop();
}

TEST(Chaos, SlowPeerIsDisconnectedWithoutHarmingOthers) {
  auto service = make_service(pool_options(1));
  net::ServerOptions sopts;
  sopts.max_write_queue_bytes = 64;  // far below one response frame
  sopts.poll_timeout_ms = 10;
  net::Server server(service, sopts);
  server.start();

  {
    // A peer that never drains: every flush stalls as if the kernel
    // buffer were full, so the queued response trips the byte cap.
    fault::Injector inj(1);
    fault::PointConfig stall;
    stall.probability = 1.0;
    inj.arm("net.server.write.stall", stall);
    fault::ScopedInjector scope(inj);

    net::Client slow(server.port());
    net::WireRequest req;
    req.hidden = make_hidden(4, 0);
    // The server disconnects the slow peer; the client observes the close
    // as a failed pending op.
    const net::WireResponse r = slow.submit(std::move(req)).get();
    EXPECT_EQ(r.error, serving::ErrorCode::kShutdown);
    slow.close();
  }
  EXPECT_EQ(server.stats().slow_peer_disconnects, 1);
  // Not double-counted as a protocol error.
  EXPECT_EQ(server.stats().protocol_errors, 0);

  // Only that connection died: with the stall gone, a fresh client works.
  net::Client client(server.port());
  net::WireRequest req;
  req.hidden = make_hidden(4, 1);
  EXPECT_EQ(client.submit(std::move(req)).get().error,
            serving::ErrorCode::kOk);

  client.close();
  server.stop();
  service.stop();
}

TEST(Chaos, InflightCapAnswersBackpressureNotQueueing) {
  auto service = make_service([] {
    serving::EnginePoolOptions opts = pool_options(1);
    opts.engine.engine.max_batch_requests = 1;
    return opts;
  }());
  net::ServerOptions sopts;
  sopts.max_inflight_per_connection = 1;
  net::Server server(service, sopts);
  server.start();
  net::Client client(server.port());

  // Park the replica on one big request, then exceed the connection's
  // in-flight budget while it computes.
  net::WireRequest big;
  big.hidden = make_hidden(2048, 0);
  auto blocker = client.submit(std::move(big));
  std::this_thread::sleep_for(std::chrono::milliseconds(3));

  std::vector<std::future<net::WireResponse>> extra;
  for (int i = 0; i < 4; ++i) {
    net::WireRequest req;
    req.hidden = make_hidden(2, 1 + i);
    extra.push_back(client.submit(std::move(req)));
  }
  EXPECT_EQ(blocker.get().error, serving::ErrorCode::kOk);
  int backpressure = 0;
  for (auto& f : extra) {
    const net::WireResponse r = f.get();
    if (r.error == serving::ErrorCode::kBackpressure) ++backpressure;
  }
  EXPECT_GE(backpressure, 1);
  EXPECT_GE(server.stats().inflight_capped, 1);
  // The connection survived the declined frames.
  net::WireRequest last;
  last.hidden = make_hidden(2, 99);
  EXPECT_EQ(client.submit(std::move(last)).get().error,
            serving::ErrorCode::kOk);

  client.close();
  server.stop();
  service.stop();
}

// ---- the chaos soak ---------------------------------------------------------

TEST(Chaos, SoakExactlyOnceBitwiseIdenticalQuarantineAndReadmit) {
  constexpr int kConns = 2;
  constexpr int kWave1 = 12;  // per connection, while replica 0 is failing
  constexpr int kWave2 = 6;   // per connection, after the cooldown
  constexpr int kPerConn = kWave1 + kWave2;
  constexpr int kTotal = kConns * kPerConn;

  std::vector<Tensor<fp16_t>> inputs;
  inputs.reserve(kTotal);
  for (int i = 0; i < kTotal; ++i) {
    inputs.push_back(make_hidden(2 + i % 7, i));
  }

  // Fault-free reference: the same inputs straight through an identical
  // in-process service. Each output depends only on its input, so the
  // chaos run must reproduce these bits exactly.
  std::vector<Tensor<fp16_t>> want(kTotal);
  {
    auto direct = make_service(pool_options(2));
    std::vector<std::future<serving::Response>> futs;
    for (int i = 0; i < kTotal; ++i) {
      serving::Request req;
      req.hidden = inputs[static_cast<std::size_t>(i)].clone();
      futs.push_back(direct.submit(std::move(req)));
    }
    for (int i = 0; i < kTotal; ++i) {
      want[static_cast<std::size_t>(i)] =
          std::move(futs[static_cast<std::size_t>(i)].get().output);
    }
    direct.stop();
  }

  // The seeded fault schedule: replica 0 fails every compute round until
  // it "recovers" (the point is disarmed between waves); ~20% of socket
  // operations are clamped short on both sides; the fifth client send
  // tears its connection down like a peer RST.
  fault::Injector inj(2026);
  {
    fault::PointConfig fail;
    fail.probability = 1.0;
    fail.instance = 0;
    inj.arm("serving.compute.fail", fail);
    fault::PointConfig shorty;
    shorty.probability = 0.2;
    inj.arm("net.server.read.short", shorty);
    inj.arm("net.server.write.short", shorty);
    inj.arm("net.client.write.short", shorty);
    fault::PointConfig reset;
    reset.fire_at = {4};
    inj.arm("net.client.conn.reset", reset);
  }
  fault::ScopedInjector scope(inj);

  serving::EnginePoolOptions popts = pool_options(2);
  popts.breaker.failure_threshold = 3;
  popts.breaker.quarantine_seconds = 0.1;
  auto service = make_service(popts);
  net::Server server(service);
  server.start();

  net::ClientOptions copts;
  copts.retry.max_attempts = 8;
  copts.retry.initial_backoff_ms = 1.0;
  copts.retry.max_backoff_ms = 10.0;
  copts.retry.seed = 7;

  std::vector<serving::Response> got(kTotal);
  std::vector<std::unique_ptr<net::Client>> clients;
  std::vector<std::vector<std::future<serving::Response>>> futs(kConns);
  for (int c = 0; c < kConns; ++c) {
    clients.push_back(
        std::make_unique<net::Client>(server.port(), copts));
  }
  const auto submit_wave = [&](int begin, int count) {
    for (int c = 0; c < kConns; ++c) {
      for (int k = 0; k < count; ++k) {
        const int slot = c * kPerConn + begin + k;
        net::WireRequest req;
        req.hidden = inputs[static_cast<std::size_t>(slot)].clone();
        futs[static_cast<std::size_t>(c)].push_back(
            clients[static_cast<std::size_t>(c)]->submit_serving(
                std::move(req)));
      }
    }
  };
  const auto collect = [&](int begin) {
    for (int c = 0; c < kConns; ++c) {
      auto& wave = futs[static_cast<std::size_t>(c)];
      for (std::size_t k = 0; k < wave.size(); ++k) {
        const int slot = c * kPerConn + begin + static_cast<int>(k);
        // .get() resolves exactly once per request: a duplicate
        // resolution would abort on the satisfied promise, a lost one
        // would hang here. Every request must end in kOk — the injected
        // failures are the client's and breaker's problem, not ours.
        got[static_cast<std::size_t>(slot)] = wave[k].get();
        EXPECT_EQ(got[static_cast<std::size_t>(slot)].error,
                  serving::ErrorCode::kOk);
      }
      wave.clear();
    }
  };

  // Wave 1 runs while replica 0 is failing: retries absorb the kInternal
  // replies and the short/reset socket faults; the breaker quarantines
  // the replica.
  submit_wave(0, kWave1);
  collect(0);
  const serving::EnginePool::BreakerStats mid =
      service.pool("tiny").breaker_stats();
  EXPECT_GE(mid.quarantines, 1);

  // The replica recovers, the cooldown elapses, and wave 2's half-open
  // probe readmits it.
  inj.disarm("serving.compute.fail");
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  submit_wave(kWave1, kWave2);
  collect(kWave1);

  // Readmission needs a route to launch the probe and a later refresh to
  // credit its completion; if wave 2 resolved before the probe finished,
  // drive light traffic until the breaker observes it.
  serving::EnginePool::BreakerStats end = service.pool("tiny").breaker_stats();
  const auto give_up = std::chrono::steady_clock::now() +
                       std::chrono::seconds(10);
  int extra = 0;
  while (end.readmissions < 1 &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    net::WireRequest req;
    req.hidden = inputs[static_cast<std::size_t>(extra++ % kTotal)].clone();
    EXPECT_EQ(clients[0]->submit_serving(std::move(req)).get().error,
              serving::ErrorCode::kOk);
    end = service.pool("tiny").breaker_stats();
  }
  EXPECT_GE(end.quarantines, 1);
  EXPECT_GE(end.probes, 1);
  EXPECT_GE(end.readmissions, 1);

  long long retries = 0;
  for (auto& client : clients) {
    retries += client->stats().retries;
    client->close();
  }
  // The breaker needed at least failure_threshold (3) failed requests to
  // trip, and every one of those kInternal replies was re-sent.
  EXPECT_GE(retries, 3);
  EXPECT_GT(inj.total_fires(), 0u);

  server.stop();
  service.stop();

  for (int i = 0; i < kTotal; ++i) {
    SCOPED_TRACE("request " + std::to_string(i));
    expect_bits_equal(got[static_cast<std::size_t>(i)].output,
                      want[static_cast<std::size_t>(i)]);
  }
}

}  // namespace
}  // namespace bt
