// The zero-padding algorithm: prefix sums, offset mappings, pack/unpack.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.h"
#include "core/padding.h"
#include "parallel/device.h"
#include "tensor/tensor.h"

namespace bt::core {
namespace {

par::Device& dev() {
  static par::Device d(2);
  return d;
}

TEST(SeqOffsets, PaperFigure4Example) {
  // Fig. 4: three sentences of lengths 5, 2, 4 (longest 5).
  const std::vector<int> lens{5, 2, 4};
  const SeqOffsets off = build_seq_offsets(dev(), lens, 5);
  EXPECT_EQ(off.valid_count, 11);
  EXPECT_EQ(off.batch_offset[0], 0);
  EXPECT_EQ(off.batch_offset[1], 5);
  EXPECT_EQ(off.batch_offset[2], 7);
  EXPECT_EQ(off.batch_offset[3], 11);
  // Packed token 5 is sentence 1 position 0 => padded row 1*5+0.
  EXPECT_EQ(off.packed_to_padded[5], 5);
  // Packed token 7 is sentence 2 position 0 => padded row 2*5+0 = 10.
  EXPECT_EQ(off.packed_to_padded[7], 10);
  // Padding cell (1, 3) maps to -1.
  EXPECT_EQ(off.padded_to_packed[1 * 5 + 3], -1);
  EXPECT_DOUBLE_EQ(off.fill_ratio(), 11.0 / 15.0);
}

TEST(SeqOffsets, MappingIsBijective) {
  Rng rng(101);
  for (int iter = 0; iter < 30; ++iter) {
    const int batch = rng.uniform_int(1, 8);
    const int max_seq = rng.uniform_int(1, 40);
    std::vector<int> lens(static_cast<std::size_t>(batch));
    for (int& l : lens) l = rng.uniform_int(1, max_seq);
    const SeqOffsets off = build_seq_offsets(dev(), lens, max_seq);

    std::set<std::int32_t> seen;
    for (std::int64_t v = 0; v < off.valid_count; ++v) {
      const std::int32_t p = off.packed_to_padded[static_cast<std::size_t>(v)];
      EXPECT_TRUE(seen.insert(p).second);
      EXPECT_EQ(off.padded_to_packed[static_cast<std::size_t>(p)], v);
    }
    // Inverse: every -1 cell is genuinely padding.
    std::int64_t pad_cells = 0;
    for (std::size_t p = 0; p < off.padded_to_packed.size(); ++p) {
      if (off.padded_to_packed[p] == -1) {
        ++pad_cells;
      }
    }
    EXPECT_EQ(pad_cells + off.valid_count,
              static_cast<std::int64_t>(batch) * max_seq);
  }
}

TEST(SeqOffsets, OffsetsAreMonotone) {
  const std::vector<int> lens{3, 1, 7, 2};
  const SeqOffsets off = build_seq_offsets(dev(), lens, 8);
  for (std::size_t b = 0; b + 1 < off.batch_offset.size(); ++b) {
    EXPECT_LT(off.batch_offset[b], off.batch_offset[b + 1]);
  }
  for (std::int64_t v = 1; v < off.valid_count; ++v) {
    EXPECT_LT(off.packed_to_padded[static_cast<std::size_t>(v) - 1],
              off.packed_to_padded[static_cast<std::size_t>(v)]);
  }
}

TEST(SeqOffsets, FromMaskMatchesFromLengths) {
  const std::vector<int> lens{4, 2, 6};
  const int max_seq = 6;
  std::vector<std::uint8_t> mask(3 * 6, 0);
  for (int b = 0; b < 3; ++b) {
    for (int s = 0; s < lens[static_cast<std::size_t>(b)]; ++s) {
      mask[static_cast<std::size_t>(b * 6 + s)] = 1;
    }
  }
  const SeqOffsets a = build_seq_offsets(dev(), lens, max_seq);
  const SeqOffsets m = build_seq_offsets_from_mask(dev(), mask, 3, max_seq);
  EXPECT_EQ(a.valid_count, m.valid_count);
  EXPECT_EQ(a.packed_to_padded, m.packed_to_padded);
  EXPECT_EQ(a.padded_to_packed, m.padded_to_packed);
  EXPECT_EQ(a.seq_lens, m.seq_lens);
}

TEST(SeqOffsets, NonPrefixMaskSupported) {
  // Holes in the middle (general Fig. 4 mask formulation).
  std::vector<std::uint8_t> mask{1, 0, 1, 1,   // row 0: 3 valid
                                 0, 0, 0, 1};  // row 1: 1 valid
  const SeqOffsets off = build_seq_offsets_from_mask(dev(), mask, 2, 4);
  EXPECT_EQ(off.valid_count, 4);
  EXPECT_EQ(off.seq_lens[0], 3);
  EXPECT_EQ(off.seq_lens[1], 1);
  EXPECT_EQ(off.packed_to_padded[0], 0);
  EXPECT_EQ(off.packed_to_padded[1], 2);
  EXPECT_EQ(off.packed_to_padded[2], 3);
  EXPECT_EQ(off.packed_to_padded[3], 7);
  EXPECT_EQ(off.padded_to_packed[1], -1);
}

TEST(Padding, PackUnpackRoundTrip) {
  Rng rng(102);
  const std::vector<int> lens{5, 1, 3};
  const int max_seq = 5;
  const int hidden = 16;
  const SeqOffsets off = build_seq_offsets(dev(), lens, max_seq);

  auto padded = Tensor<fp16_t>::zeros({3 * max_seq, hidden});
  for (std::int64_t v = 0; v < off.valid_count; ++v) {
    const std::int64_t r = off.packed_to_padded[static_cast<std::size_t>(v)];
    for (int j = 0; j < hidden; ++j) padded(r, j) = fp16_t(rng.normal());
  }

  auto packed = Tensor<fp16_t>::zeros({off.valid_count, hidden});
  pack_rows(dev(), padded.data(), packed.data(), off, hidden);
  auto rebuilt = Tensor<fp16_t>({3 * max_seq, hidden});
  rebuilt.fill(fp16_t(99.0f));  // garbage that unpack must clear
  unpack_rows(dev(), packed.data(), rebuilt.data(), off, hidden);

  EXPECT_EQ(max_abs_diff(padded, rebuilt), 0.0);
}

TEST(Padding, UnpackZeroFillsPaddingRows) {
  const std::vector<int> lens{2};
  const SeqOffsets off = build_seq_offsets(dev(), lens, 4);
  auto packed = Tensor<fp16_t>({2, 3});
  packed.fill(fp16_t(1.0f));
  auto padded = Tensor<fp16_t>({4, 3});
  padded.fill(fp16_t(-5.0f));
  unpack_rows(dev(), packed.data(), padded.data(), off, 3);
  for (int r = 2; r < 4; ++r) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_EQ(load_f32(padded(r, j)), 0.0f);
    }
  }
  for (int r = 0; r < 2; ++r) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_EQ(load_f32(padded(r, j)), 1.0f);
    }
  }
}

TEST(Padding, PackGathersValidRowsInOrder) {
  const std::vector<int> lens{1, 2};
  const SeqOffsets off = build_seq_offsets(dev(), lens, 3);
  auto padded = Tensor<float>::zeros({6, 1});
  for (int r = 0; r < 6; ++r) padded(r, 0) = static_cast<float>(r);
  auto packed = Tensor<float>::zeros({3, 1});
  pack_rows(dev(), padded.data(), packed.data(), off, 1);
  EXPECT_EQ(packed(0, 0), 0.0f);  // batch 0 pos 0 = padded row 0
  EXPECT_EQ(packed(1, 0), 3.0f);  // batch 1 pos 0 = padded row 3
  EXPECT_EQ(packed(2, 0), 4.0f);  // batch 1 pos 1 = padded row 4
}

TEST(Padding, FullLengthBatchIsIdentity) {
  Rng rng(103);
  const std::vector<int> lens{4, 4};
  const SeqOffsets off = build_seq_offsets(dev(), lens, 4);
  EXPECT_EQ(off.valid_count, 8);
  EXPECT_DOUBLE_EQ(off.fill_ratio(), 1.0);
  auto padded = Tensor<fp16_t>::random_normal({8, 5}, rng);
  auto packed = Tensor<fp16_t>::zeros({8, 5});
  pack_rows(dev(), padded.data(), packed.data(), off, 5);
  EXPECT_EQ(max_abs_diff(padded, packed), 0.0);
}

}  // namespace
}  // namespace bt::core
