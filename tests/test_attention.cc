// Every MHA variant against the FP64 reference, across batch/heads/length
// distributions. Each variant is an independent implementation, so agreement
// here is strong evidence of correctness.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "attention/attention.h"
#include "common/rng.h"
#include "kernels/transpose.h"
#include "parallel/device.h"
#include "tensor/tensor.h"
#include "test_utils.h"

namespace bt::attn {
namespace {

par::Device& dev() {
  static par::Device d(2);
  return d;
}

struct Case {
  int heads;
  int head_size;
  int max_seq;
  std::vector<int> lens;
};

struct Fixture {
  core::SeqOffsets off;
  Tensor<fp16_t> qkv;       // packed [valid, 3H]
  Tensor<fp16_t> qkv_bias;  // [3H]
  Tensor<fp16_t> q, k, v;   // padded per-head, bias applied
  std::vector<double> ctx_ref;  // padded per-head reference output
  int hidden = 0;

  explicit Fixture(const Case& c, std::uint64_t seed = 1234) {
    Rng rng(seed);
    hidden = c.heads * c.head_size;
    off = core::build_seq_offsets(dev(), c.lens, c.max_seq);
    qkv = Tensor<fp16_t>::random_normal({off.valid_count, 3 * hidden}, rng);
    qkv_bias = Tensor<fp16_t>::random_normal({3 * hidden}, rng, 0.2f);

    const int batch = off.batch;
    const std::int64_t per_head =
        static_cast<std::int64_t>(batch) * c.heads * c.max_seq * c.head_size;
    q = Tensor<fp16_t>::zeros({per_head});
    k = Tensor<fp16_t>::zeros({per_head});
    v = Tensor<fp16_t>::zeros({per_head});
    kernels::split_qkv_add_bias_rebuild_padding(dev(), qkv.data(),
                                                qkv_bias.data(), q.data(),
                                                k.data(), v.data(), off,
                                                c.heads, c.head_size);
    ctx_ref.assign(static_cast<std::size_t>(per_head), 0.0);
    const auto qd = test::to_f64(q);
    const auto kd = test::to_f64(k);
    const auto vd = test::to_f64(v);
    mha_reference(qd.data(), kd.data(), vd.data(), ctx_ref.data(), batch,
                  c.heads, c.max_seq, c.head_size, off.seq_lens);
  }

  // Max abs diff between a padded per-head fp16 context and the reference,
  // valid positions only.
  double diff_padded(const Tensor<fp16_t>& ctx, const Case& c) const {
    double worst = 0;
    for (int b = 0; b < off.batch; ++b) {
      const int len = off.seq_lens[static_cast<std::size_t>(b)];
      for (int h = 0; h < c.heads; ++h) {
        for (int s = 0; s < len; ++s) {
          for (int d = 0; d < c.head_size; ++d) {
            const std::int64_t idx =
                ((static_cast<std::int64_t>(b) * c.heads + h) * c.max_seq + s) *
                    c.head_size +
                d;
            worst = std::max(worst,
                             std::abs(static_cast<double>(load_f32(
                                          ctx.data()[idx])) -
                                      ctx_ref[static_cast<std::size_t>(idx)]));
          }
        }
      }
    }
    return worst;
  }

  // Max abs diff between a packed fp16 context [valid, H] and the reference.
  double diff_packed(const Tensor<fp16_t>& ctx, const Case& c) const {
    double worst = 0;
    for (std::int64_t t = 0; t < off.valid_count; ++t) {
      const std::int64_t padded = off.packed_to_padded[static_cast<std::size_t>(t)];
      const std::int64_t b = padded / off.max_seq;
      const std::int64_t s = padded % off.max_seq;
      for (int h = 0; h < c.heads; ++h) {
        for (int d = 0; d < c.head_size; ++d) {
          const std::int64_t ref_idx =
              ((b * c.heads + h) * off.max_seq + s) * c.head_size + d;
          const float got = load_f32(ctx.data()[t * hidden + h * c.head_size + d]);
          worst = std::max(worst, std::abs(static_cast<double>(got) -
                                           ctx_ref[static_cast<std::size_t>(ref_idx)]));
        }
      }
    }
    return worst;
  }
};

constexpr double kTol = 4e-2;  // FP16 storage + fp32 accumulation headroom

class AttentionVariants : public ::testing::TestWithParam<Case> {};

TEST_P(AttentionVariants, PyTorchLike) {
  const Case c = GetParam();
  Fixture f(c);
  core::Workspace ws;
  auto ctx = Tensor<fp16_t>::zeros({static_cast<std::int64_t>(f.off.batch) *
                                    c.heads * c.max_seq * c.head_size});
  PaddedMhaArgs args{f.q.data(), f.k.data(), f.v.data(), ctx.data(),
                     f.off.batch, c.heads,   c.max_seq,  c.head_size,
                     f.off.seq_lens};
  mha_pytorch_like(dev(), args, ws);
  EXPECT_LT(f.diff_padded(ctx, c), kTol);
}

TEST_P(AttentionVariants, Batched) {
  const Case c = GetParam();
  Fixture f(c);
  core::Workspace ws;
  auto ctx = Tensor<fp16_t>::zeros({static_cast<std::int64_t>(f.off.batch) *
                                    c.heads * c.max_seq * c.head_size});
  PaddedMhaArgs args{f.q.data(), f.k.data(), f.v.data(), ctx.data(),
                     f.off.batch, c.heads,   c.max_seq,  c.head_size,
                     f.off.seq_lens};
  mha_batched(dev(), args, ws);
  EXPECT_LT(f.diff_padded(ctx, c), kTol);
}

TEST_P(AttentionVariants, BatchedZeroPad) {
  const Case c = GetParam();
  Fixture f(c);
  core::Workspace ws;
  auto ctx = Tensor<fp16_t>::zeros({static_cast<std::int64_t>(f.off.batch) *
                                    c.heads * c.max_seq * c.head_size});
  PaddedMhaArgs args{f.q.data(), f.k.data(), f.v.data(), ctx.data(),
                     f.off.batch, c.heads,   c.max_seq,  c.head_size,
                     f.off.seq_lens};
  mha_batched_zeropad(dev(), args, ws);
  EXPECT_LT(f.diff_padded(ctx, c), kTol);
}

TEST_P(AttentionVariants, FusedShort) {
  const Case c = GetParam();
  Fixture f(c);
  core::Workspace ws;
  auto ctx = Tensor<fp16_t>::zeros({f.off.valid_count, f.hidden});
  PackedMhaArgs args{f.qkv.data(), f.qkv_bias.data(), ctx.data(), &f.off,
                     c.heads,      c.head_size};
  mha_fused_short(dev(), args, ws);
  EXPECT_LT(f.diff_packed(ctx, c), kTol);
}

TEST_P(AttentionVariants, FusedLong) {
  const Case c = GetParam();
  Fixture f(c);
  core::Workspace ws;
  auto ctx = Tensor<fp16_t>::zeros({f.off.valid_count, f.hidden});
  PackedMhaArgs args{f.qkv.data(), f.qkv_bias.data(), ctx.data(), &f.off,
                     c.heads,      c.head_size};
  mha_fused_long(dev(), args, ws);
  EXPECT_LT(f.diff_packed(ctx, c), kTol);
}

TEST_P(AttentionVariants, FlashLike) {
  const Case c = GetParam();
  Fixture f(c);
  core::Workspace ws;
  auto ctx = Tensor<fp16_t>::zeros({f.off.valid_count, f.hidden});
  PackedMhaArgs args{f.qkv.data(), f.qkv_bias.data(), ctx.data(), &f.off,
                     c.heads,      c.head_size};
  mha_flash_like(dev(), args, ws);
  EXPECT_LT(f.diff_packed(ctx, c), kTol);
}

TEST_P(AttentionVariants, EtLikeF32) {
  const Case c = GetParam();
  Fixture f(c);
  core::Workspace ws;
  const std::int64_t per_head = static_cast<std::int64_t>(f.off.batch) *
                                c.heads * c.max_seq * c.head_size;
  // FP32 copies of the padded per-head operands.
  Tensor<float> qf({per_head});
  Tensor<float> kf({per_head});
  Tensor<float> vf({per_head});
  Tensor<float> ctx = Tensor<float>::zeros({per_head});
  for (std::int64_t i = 0; i < per_head; ++i) {
    qf.data()[i] = load_f32(f.q.data()[i]);
    kf.data()[i] = load_f32(f.k.data()[i]);
    vf.data()[i] = load_f32(f.v.data()[i]);
  }
  PaddedMhaArgsF32 args{qf.data(), kf.data(), vf.data(), ctx.data(),
                        f.off.batch, c.heads, c.max_seq, c.head_size,
                        f.off.seq_lens};
  mha_et_like(dev(), args, ws);
  double worst = 0;
  for (int b = 0; b < f.off.batch; ++b) {
    const int len = f.off.seq_lens[static_cast<std::size_t>(b)];
    for (int h = 0; h < c.heads; ++h) {
      for (int s = 0; s < len; ++s) {
        for (int d = 0; d < c.head_size; ++d) {
          const std::int64_t idx =
              ((static_cast<std::int64_t>(b) * c.heads + h) * c.max_seq + s) *
                  c.head_size +
              d;
          worst = std::max(worst, std::abs(ctx.data()[idx] -
                                           f.ctx_ref[static_cast<std::size_t>(idx)]));
        }
      }
    }
  }
  EXPECT_LT(worst, kTol);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AttentionVariants,
    ::testing::Values(Case{1, 16, 8, {8}},             // tiny, full length
                      Case{1, 16, 8, {1}},             // single token
                      Case{2, 16, 24, {24, 7}},        // mixed lengths
                      Case{2, 32, 48, {48, 48}},       // exactly one tile
                      Case{4, 16, 60, {1, 60, 31, 47}},  // ragged
                      Case{2, 64, 96, {50, 96}},       // BERT head size
                      Case{3, 64, 100, {3, 99, 64}}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return "h" + std::to_string(info.param.heads) + "_d" +
             std::to_string(info.param.head_size) + "_s" +
             std::to_string(info.param.max_seq) + "_i" +
             std::to_string(info.index);
    });

TEST(AttentionProperty, RandomLengthsAllVariantsAgree) {
  Rng rng(777);
  for (int iter = 0; iter < 8; ++iter) {
    Case c;
    c.heads = rng.uniform_int(1, 4);
    c.head_size = 16 * rng.uniform_int(1, 3);
    c.max_seq = rng.uniform_int(2, 80);
    const int batch = rng.uniform_int(1, 5);
    for (int b = 0; b < batch; ++b) {
      c.lens.push_back(rng.uniform_int(1, c.max_seq));
    }
    Fixture f(c, 1000 + static_cast<std::uint64_t>(iter));
    core::Workspace ws;
    auto ctx_short = Tensor<fp16_t>::zeros({f.off.valid_count, f.hidden});
    auto ctx_long = Tensor<fp16_t>::zeros({f.off.valid_count, f.hidden});
    auto ctx_flash = Tensor<fp16_t>::zeros({f.off.valid_count, f.hidden});
    PackedMhaArgs args{f.qkv.data(), f.qkv_bias.data(), nullptr, &f.off,
                       c.heads,      c.head_size};
    args.ctx = ctx_short.data();
    mha_fused_short(dev(), args, ws);
    args.ctx = ctx_long.data();
    mha_fused_long(dev(), args, ws);
    args.ctx = ctx_flash.data();
    mha_flash_like(dev(), args, ws);
    EXPECT_LT(f.diff_packed(ctx_short, c), kTol) << "iter " << iter;
    EXPECT_LT(f.diff_packed(ctx_long, c), kTol) << "iter " << iter;
    EXPECT_LT(f.diff_packed(ctx_flash, c), kTol) << "iter " << iter;
    // Variants also agree with each other tightly.
    EXPECT_LT(max_abs_diff(ctx_short, ctx_long), kTol);
    EXPECT_LT(max_abs_diff(ctx_short, ctx_flash), kTol);
  }
}

}  // namespace
}  // namespace bt::attn
