// Scalar numeric helpers.
#include <gtest/gtest.h>

#include <cmath>

#include "common/numeric.h"
#include "common/rng.h"
#include "common/timer.h"

namespace bt {
namespace {

TEST(Numeric, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0);
  EXPECT_EQ(ceil_div(1, 4), 1);
  EXPECT_EQ(ceil_div(4, 4), 1);
  EXPECT_EQ(ceil_div(5, 4), 2);
  EXPECT_EQ(ceil_div(1023, 64), 16);
  EXPECT_EQ(ceil_div(1024, 64), 16);
  EXPECT_EQ(ceil_div(1025, 64), 17);
}

TEST(Numeric, RoundUp) {
  EXPECT_EQ(round_up(0, 64), 0);
  EXPECT_EQ(round_up(1, 64), 64);
  EXPECT_EQ(round_up(64, 64), 64);
  EXPECT_EQ(round_up(65, 64), 128);
}

TEST(Numeric, FastTanhMatchesLibm) {
  for (float x = -10.0f; x <= 10.0f; x += 0.001f) {
    EXPECT_NEAR(fast_tanh(x), std::tanh(x), 2e-4) << "x=" << x;
  }
  EXPECT_EQ(fast_tanh(0.0f), 0.0f);
  EXPECT_NEAR(fast_tanh(100.0f), 1.0f, 2e-4);
  EXPECT_NEAR(fast_tanh(-100.0f), -1.0f, 2e-4);
}

TEST(Numeric, GeluTanhMatchesErfClosely) {
  // The tanh approximation tracks exact GELU to ~1e-3 over the active range.
  for (float x = -6.0f; x <= 6.0f; x += 0.01f) {
    const double exact = gelu_erf(x);
    EXPECT_NEAR(gelu_tanh(x), exact, 3e-3) << "x=" << x;
  }
}

TEST(Numeric, GeluFixedPoints) {
  EXPECT_FLOAT_EQ(gelu_tanh(0.0f), 0.0f);
  EXPECT_NEAR(gelu_tanh(1.0f), 0.8412f, 1e-3);
  EXPECT_NEAR(gelu_tanh(-1.0f), -0.1588f, 1e-3);
  // Saturation: gelu(x) -> x for large x, -> 0 for very negative x.
  EXPECT_NEAR(gelu_tanh(10.0f), 10.0f, 1e-4);
  EXPECT_NEAR(gelu_tanh(-10.0f), 0.0f, 1e-4);
}

TEST(Numeric, SoftmaxScale) {
  EXPECT_FLOAT_EQ(softmax_scale(64), 0.125f);
  EXPECT_FLOAT_EQ(softmax_scale(4), 0.5f);
}

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.normal(), b.normal());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.normal() == b.normal()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const int v = rng.uniform_int(3, 17);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, FillNormalStats) {
  Rng rng(9);
  std::vector<float> v(100000);
  rng.fill_normal(std::span<float>(v), 2.0f, 3.0f);
  double mean = 0;
  for (float x : v) mean += x;
  mean /= static_cast<double>(v.size());
  double var = 0;
  for (float x : v) var += (x - mean) * (x - mean);
  var /= static_cast<double>(v.size());
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Timer, MeasuresElapsed) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 2000000; ++i) sink = sink + i;
  EXPECT_GT(t.seconds(), 0.0);
  EXPECT_LT(t.seconds(), 10.0);
}

TEST(StageTimes, AccumulatesByName) {
  StageTimes times;
  times.add("a", 1.0);
  times.add("b", 2.0);
  times.add("a", 0.5);
  EXPECT_DOUBLE_EQ(times.stages().at("a"), 1.5);
  EXPECT_DOUBLE_EQ(times.stages().at("b"), 2.0);
  EXPECT_DOUBLE_EQ(times.total_seconds(), 3.5);
  times.clear();
  EXPECT_TRUE(times.stages().empty());
}

TEST(StageTimes, ScopeAttributesOnDestruction) {
  StageTimes times;
  {
    StageScope scope(&times, "stage");
    // long long: the triangular sum (~5e9) overflows int, which is UB the
    // UBSan CI leg rejects — the burn loop must be overflow-free.
    volatile long long sink = 0;
    for (int i = 0; i < 100000; ++i) sink = sink + i;
  }
  EXPECT_GT(times.stages().at("stage"), 0.0);
  // Null sink is a no-op.
  { StageScope scope(nullptr, "ignored"); }
  EXPECT_EQ(times.stages().count("ignored"), 0u);
}

}  // namespace
}  // namespace bt
