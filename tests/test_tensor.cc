// Tensor container semantics.
#include <gtest/gtest.h>

#include <cstdint>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace bt {
namespace {

TEST(Tensor, ShapeAndSize) {
  Tensor<float> t({2, 3, 4});
  EXPECT_EQ(t.rank(), 3);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.dim(2), 4);
  EXPECT_EQ(t.size(), 24);
}

TEST(Tensor, EmptyTensor) {
  Tensor<float> t;
  EXPECT_EQ(t.size(), 0);
  EXPECT_EQ(t.rank(), 0);
  Tensor<float> z({0, 5});
  EXPECT_EQ(z.size(), 0);
}

TEST(Tensor, DataIsCacheLineAligned) {
  for (int i = 0; i < 8; ++i) {
    Tensor<fp16_t> t({17 + i});
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(t.data()) % kCacheLine, 0u);
  }
}

TEST(Tensor, ZerosAndFill) {
  auto t = Tensor<float>::zeros({5, 5});
  for (std::int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t(i), 0.0f);
  t.fill(3.5f);
  for (std::int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t(i), 3.5f);
}

TEST(Tensor, RowMajorIndexing) {
  Tensor<float> t({2, 3});
  for (std::int64_t i = 0; i < 2; ++i) {
    for (std::int64_t j = 0; j < 3; ++j) {
      t(i, j) = static_cast<float>(i * 10 + j);
    }
  }
  EXPECT_EQ(t.data()[0], 0.0f);
  EXPECT_EQ(t.data()[1], 1.0f);
  EXPECT_EQ(t.data()[3], 10.0f);
  EXPECT_EQ(t(1, 2), 12.0f);
}

TEST(Tensor, FourDIndexing) {
  Tensor<int> t({2, 3, 4, 5});
  t(1, 2, 3, 4) = 99;
  EXPECT_EQ(t.data()[((1 * 3 + 2) * 4 + 3) * 5 + 4], 99);
}

TEST(Tensor, CloneIsDeep) {
  auto t = Tensor<float>::zeros({4});
  auto c = t.clone();
  c(0) = 1.0f;
  EXPECT_EQ(t(0), 0.0f);
  EXPECT_EQ(c(0), 1.0f);
}

TEST(Tensor, CastRoundsToFp16) {
  Tensor<float> t({3});
  t(0) = 1.0f;
  t(1) = 0.1f;  // not exactly representable
  t(2) = -2.5f;
  auto h = t.cast<fp16_t>();
  EXPECT_EQ(static_cast<float>(h(0)), 1.0f);
  EXPECT_NEAR(static_cast<float>(h(1)), 0.1f, 1e-4);
  EXPECT_EQ(static_cast<float>(h(2)), -2.5f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor<float> t({2, 6});
  for (std::int64_t i = 0; i < 12; ++i) t(i / 6, i % 6) = static_cast<float>(i);
  t.reshape({3, 4});
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_EQ(t.dim(1), 4);
  EXPECT_EQ(t(2, 3), 11.0f);
}

TEST(Tensor, RandomNormalIsSeeded) {
  Rng a(11);
  Rng b(11);
  auto x = Tensor<float>::random_normal({100}, a);
  auto y = Tensor<float>::random_normal({100}, b);
  EXPECT_EQ(max_abs_diff(x, y), 0.0);
}

TEST(Tensor, MaxAbsDiff) {
  Tensor<float> a({3});
  Tensor<float> b({3});
  a(0) = 1;
  a(1) = 2;
  a(2) = 3;
  b(0) = 1;
  b(1) = 2.5f;
  b(2) = 2;
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 1.0);
}

TEST(Tensor, MaxAbsDiffMixedTypes) {
  Tensor<float> a({2});
  a(0) = 1.0f;
  a(1) = 2.0f;
  auto h = a.cast<fp16_t>();
  EXPECT_EQ(max_abs_diff(a, h), 0.0);
}

TEST(Tensor, MoveTransfersOwnership) {
  Tensor<float> a({4});
  a.fill(7.0f);
  const float* p = a.data();
  Tensor<float> b = std::move(a);
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b(3), 7.0f);
}

}  // namespace
}  // namespace bt
