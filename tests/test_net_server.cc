// net::Server loopback integration: wire round trips are bitwise-identical
// to in-process Service::submit under concurrent client connections;
// backpressure, deadline shedding, unknown models, duplicate correlations,
// and service shutdown all surface as their stable ErrorCode frames; and a
// malformed stream kills exactly its own connection, never the event loop.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/model.h"
#include "net/client.h"
#include "net/server.h"
#include "serving/service.h"
#include "tensor/tensor.h"

namespace bt::net {
namespace {

core::BertConfig tiny_config() {
  core::BertConfig cfg;
  cfg.layers = 2;
  cfg.heads = 2;
  cfg.head_size = 16;
  return cfg;
}

std::shared_ptr<const core::BertModel> tiny_model() {
  static std::shared_ptr<const core::BertModel> model = [] {
    Rng rng(4242);
    return std::make_shared<const core::BertModel>(
        core::BertModel::random(tiny_config(), rng));
  }();
  return model;
}

serving::EnginePoolOptions pool_options(int max_batch_requests = 4,
                                        std::size_t max_queue = 1024,
                                        double max_wait_seconds = 0.001) {
  serving::EnginePoolOptions opts;
  opts.engine.engine.policy = serving::BatchPolicy::kPacked;
  opts.engine.engine.max_batch_requests = max_batch_requests;
  opts.engine.max_queue = max_queue;
  opts.engine.max_wait_seconds = max_wait_seconds;
  opts.replicas = 1;
  opts.threads_per_replica = 1;
  return opts;
}

serving::Service make_service(serving::EnginePoolOptions opts = pool_options()) {
  serving::ModelRegistry registry;
  registry.add("tiny", tiny_model(), opts);
  return serving::Service(std::move(registry));
}

Tensor<fp16_t> make_hidden(int rows, int salt) {
  const int hidden = tiny_config().hidden();
  Tensor<fp16_t> t({rows, hidden});
  for (int s = 0; s < rows; ++s) {
    for (int j = 0; j < hidden; ++j) {
      t(s, j) = fp16_t(0.01f * j + 0.001f * ((salt + s) % 13));
    }
  }
  return t;
}

void expect_bits_equal(const Tensor<fp16_t>& got, const Tensor<fp16_t>& want) {
  ASSERT_EQ(got.dim(0), want.dim(0));
  ASSERT_EQ(got.dim(1), want.dim(1));
  ASSERT_EQ(std::memcmp(got.data(), want.data(),
                        static_cast<std::size_t>(got.dim(0)) *
                            static_cast<std::size_t>(got.dim(1)) * 2),
            0);
}

// A raw loopback socket for the tests that must speak bytes the Client
// would never produce (duplicate correlations, garbage streams).
struct RawConn {
  int fd = -1;
  explicit RawConn(std::uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
        0) {
      ::close(fd);
      fd = -1;  // tests ASSERT_GE(raw.fd, 0) before using it
    }
  }
  ~RawConn() {
    if (fd >= 0) ::close(fd);
  }
  void send_all(const void* data, std::size_t n) {
    const char* p = static_cast<const char*>(data);
    while (n > 0) {
      const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
      ASSERT_GT(w, 0);
      p += w;
      n -= static_cast<std::size_t>(w);
    }
  }
  // Blocks until one response frame decodes (or the peer closes, which
  // fails the test).
  void read_response(Decoder& dec, ResponseFrame* out) {
    Frame frame;
    char chunk[4096];
    for (;;) {
      const DecodeStatus status = dec.next(&frame);
      if (status == DecodeStatus::kFrame) {
        ASSERT_EQ(frame.type, FrameType::kResponse);
        *out = frame.response;
        return;
      }
      ASSERT_EQ(status, DecodeStatus::kNeedMore);
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      ASSERT_GT(n, 0) << "server closed the connection mid-read";
      dec.feed(chunk, static_cast<std::size_t>(n));
    }
  }
};

TEST(NetServer, StartStopAndPortAssignment) {
  auto service = make_service();
  Server server(service);
  EXPECT_FALSE(server.running());
  server.start();
  EXPECT_TRUE(server.running());
  EXPECT_GT(server.port(), 0);
  server.stop();
  server.stop();  // idempotent
  EXPECT_FALSE(server.running());
  service.stop();
}

TEST(NetServer, LoopbackBitwiseMatchesInProcess) {
  // The acceptance bar: the same trace through real sockets, on >= 4
  // concurrent connections, must produce bitwise-identical outputs to
  // direct Service::submit.
  constexpr int kConns = 4;
  constexpr int kPerConn = 6;
  auto wire_service = make_service();
  auto direct_service = make_service();
  Server server(wire_service);
  server.start();

  struct Slot {
    Tensor<fp16_t> input;
    std::string session;
    serving::Response wire;
    serving::Response direct;
  };
  std::vector<Slot> slots(kConns * kPerConn);
  for (int i = 0; i < kConns * kPerConn; ++i) {
    slots[static_cast<std::size_t>(i)].input = make_hidden(3 + i % 9, i);
    if (i % 3 == 0) {
      slots[static_cast<std::size_t>(i)].session = "s" + std::to_string(i % 5);
    }
  }

  std::vector<std::thread> threads;
  for (int c = 0; c < kConns; ++c) {
    threads.emplace_back([&, c] {
      Client client(server.port());
      std::vector<std::future<serving::Response>> futs;
      for (int k = 0; k < kPerConn; ++k) {
        Slot& slot = slots[static_cast<std::size_t>(c * kPerConn + k)];
        WireRequest req;
        req.session = slot.session;
        req.hidden = slot.input.clone();  // slot.input feeds the direct run
        futs.push_back(client.submit_serving(std::move(req)));
      }
      for (int k = 0; k < kPerConn; ++k) {
        slots[static_cast<std::size_t>(c * kPerConn + k)].wire =
            futs[static_cast<std::size_t>(k)].get();
      }
    });
  }
  for (auto& t : threads) t.join();
  server.stop();
  wire_service.stop();

  std::vector<std::future<serving::Response>> direct_futs;
  for (auto& slot : slots) {
    serving::Request req;
    req.hidden = slot.input.clone();
    if (!slot.session.empty()) req.session = slot.session;
    direct_futs.push_back(direct_service.submit(std::move(req)));
  }
  for (std::size_t i = 0; i < slots.size(); ++i) {
    slots[i].direct = direct_futs[i].get();
  }
  direct_service.stop();

  for (const auto& slot : slots) {
    SCOPED_TRACE(slot.session);
    expect_bits_equal(slot.wire.output, slot.direct.output);
    EXPECT_EQ(slot.wire.model, "tiny");
    EXPECT_EQ(slot.wire.error, serving::ErrorCode::kOk);
    // Session provenance survives the wire round trip.
    if (!slot.session.empty()) {
      ASSERT_TRUE(slot.wire.session.has_value());
      EXPECT_EQ(*slot.wire.session, slot.session);
    }
  }

  const ServerStats st = server.stats();
  EXPECT_EQ(st.accepted_connections, kConns);
  EXPECT_EQ(st.frames_received, kConns * kPerConn);
  EXPECT_EQ(st.responses_sent, kConns * kPerConn);
  EXPECT_EQ(st.error_frames_sent, 0);
  EXPECT_EQ(st.protocol_errors, 0);
}

TEST(NetServer, UnknownModelIsAFrameNotAClosedConnection) {
  auto service = make_service();
  Server server(service);
  server.start();
  Client client(server.port());

  WireRequest bad;
  bad.model = "no-such-model";
  bad.hidden = make_hidden(2, 0);
  const WireResponse r = client.submit(std::move(bad)).get();
  EXPECT_EQ(r.error, serving::ErrorCode::kUnknownModel);
  EXPECT_FALSE(r.message.empty());

  // The connection survived: a valid request on it still round-trips.
  WireRequest good;
  good.hidden = make_hidden(2, 1);
  const WireResponse ok = client.submit(std::move(good)).get();
  EXPECT_EQ(ok.error, serving::ErrorCode::kOk);
  EXPECT_EQ(ok.model, "tiny");

  client.close();
  server.stop();
  service.stop();
}

TEST(NetServer, BackpressureSurfacesAsFrames) {
  // Queue capacity 1, one request per round: a burst must split into some
  // kOk and some immediate kBackpressure frames — and the event loop never
  // blocks to make room.
  auto service = make_service(pool_options(/*max_batch_requests=*/1,
                                           /*max_queue=*/1));
  Server server(service);
  server.start();
  Client client(server.port());

  std::vector<std::future<WireResponse>> futs;
  for (int i = 0; i < 32; ++i) {
    WireRequest req;
    req.hidden = make_hidden(128, i);
    futs.push_back(client.submit(std::move(req)));
  }
  int ok = 0, backpressure = 0;
  for (auto& f : futs) {
    const WireResponse r = f.get();
    if (r.error == serving::ErrorCode::kOk) ++ok;
    if (r.error == serving::ErrorCode::kBackpressure) ++backpressure;
  }
  EXPECT_GE(ok, 1);
  EXPECT_GE(backpressure, 1);
  EXPECT_EQ(ok + backpressure, 32);
  EXPECT_GE(server.stats().backpressure_replies, 1);

  client.close();
  server.stop();
  service.stop();
}

TEST(NetServer, DeadlineTravelsTheWire) {
  // Park the single replica on one long request, then send 1 ms wire
  // deadlines while it is mid-compute: no scheduling round can start
  // inside their window (EDF would otherwise serve them first), so they
  // must come back as kDeadlineExceeded frames — produced by the same
  // shedding machinery the in-process tier uses.
  auto service = make_service(pool_options(/*max_batch_requests=*/1));
  Server server(service);
  server.start();
  Client client(server.port());

  WireRequest big;
  big.hidden = make_hidden(2048, 0);
  auto blocker = client.submit(std::move(big));
  // Past the 1 ms batching window: the blocker's round is now computing.
  std::this_thread::sleep_for(std::chrono::milliseconds(3));

  std::vector<std::future<WireResponse>> tight;
  for (int i = 0; i < 4; ++i) {
    WireRequest req;
    req.deadline_ms = 1;
    req.hidden = make_hidden(8, 100 + i);
    tight.push_back(client.submit(std::move(req)));
  }
  EXPECT_EQ(blocker.get().error, serving::ErrorCode::kOk);
  int shed = 0;
  for (auto& f : tight) {
    const WireResponse r = f.get();
    if (r.error == serving::ErrorCode::kDeadlineExceeded) {
      ++shed;
      EXPECT_FALSE(r.message.empty());
    }
  }
  EXPECT_GE(shed, 1);

  client.close();
  server.stop();
  service.stop();
}

TEST(NetServer, DuplicateCorrelationGetsItsOwnError) {
  auto service = make_service();
  Server server(service);
  server.start();
  RawConn raw(server.port());
  ASSERT_GE(raw.fd, 0);

  // Two frames, same correlation, one send: the event loop decodes them
  // back-to-back, so the second deterministically finds the first still in
  // flight.
  const Tensor<fp16_t> hidden = make_hidden(64, 3);
  SubmitFrame f;
  f.correlation = 99;
  f.rows = static_cast<std::uint32_t>(hidden.dim(0));
  f.cols = static_cast<std::uint32_t>(hidden.dim(1));
  f.tokens = reinterpret_cast<const std::byte*>(hidden.data());
  Buffer wire;
  encode_submit(wire, f);
  encode_submit(wire, f);
  raw.send_all(wire.data(), wire.size());

  Decoder dec;
  ResponseFrame r1, r2;
  raw.read_response(dec, &r1);
  if (::testing::Test::HasFatalFailure()) return;
  raw.read_response(dec, &r2);
  if (::testing::Test::HasFatalFailure()) return;
  EXPECT_EQ(r1.correlation, 99u);
  EXPECT_EQ(r2.correlation, 99u);
  // The duplicate is rejected immediately; the original still completes.
  EXPECT_EQ(r1.error, serving::ErrorCode::kDuplicateId);
  EXPECT_EQ(r2.error, serving::ErrorCode::kOk);

  server.stop();
  service.stop();
}

TEST(NetServer, MalformedStreamKillsOnlyItsConnection) {
  auto service = make_service();
  Server server(service);
  server.start();

  {
    RawConn raw(server.port());
    ASSERT_GE(raw.fd, 0);
    // An impossible length prefix: the server must close this connection.
    const std::uint8_t garbage[] = {0xff, 0xff, 0xff, 0xff, 0xde, 0xad};
    raw.send_all(garbage, sizeof garbage);
    if (::testing::Test::HasFatalFailure()) return;
    char sink[64];
    EXPECT_EQ(::recv(raw.fd, sink, sizeof sink, 0), 0);  // clean EOF
  }

  // The loop survived: a well-behaved client connects and serves.
  Client client(server.port());
  WireRequest req;
  req.hidden = make_hidden(2, 0);
  EXPECT_EQ(client.submit(std::move(req)).get().error,
            serving::ErrorCode::kOk);
  EXPECT_GE(server.stats().protocol_errors, 1);

  client.close();
  server.stop();
  service.stop();
}

TEST(NetServer, WrongTokenWidthIsAProtocolViolation) {
  // cols must equal the resolved model's hidden width; the ErrorCode
  // vocabulary deliberately has no "bad request" code (docs/WIRE.md), so a
  // lying token matrix closes the connection like any malformed traffic.
  auto service = make_service();
  Server server(service);
  server.start();
  Client client(server.port());

  WireRequest req;
  req.hidden = Tensor<fp16_t>({2, tiny_config().hidden() / 2});
  const WireResponse r = client.submit(std::move(req)).get();
  // The client observes the close as a failed pending op, not a server
  // frame: kShutdown with the connection-closed diagnostic.
  EXPECT_EQ(r.error, serving::ErrorCode::kShutdown);
  EXPECT_GE(server.stats().protocol_errors, 1);

  client.close();
  server.stop();
  service.stop();
}

TEST(NetServer, StoppedServiceAnswersShutdown) {
  auto service = make_service();
  Server server(service);
  server.start();
  service.stop();  // compute tier gone; the socket tier must say so

  Client client(server.port());
  WireRequest req;
  req.hidden = make_hidden(2, 0);
  const WireResponse r = client.submit(std::move(req)).get();
  EXPECT_EQ(r.error, serving::ErrorCode::kShutdown);

  client.close();
  server.stop();
}

}  // namespace
}  // namespace bt::net
