// EnginePool: per-request bitwise equivalence with a single AsyncEngine for
// every batching policy under concurrent submitters, one shared
// ModelWeights/PackedPanels copy across replicas (packed exactly once),
// deterministic routing, pool-wide id contract, aggregated stats, and
// shutdown semantics.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/model.h"
#include "serving/pool.h"
#include "tensor/tensor.h"

namespace bt::serving {
namespace {

core::BertConfig tiny_config() {
  core::BertConfig cfg;
  cfg.layers = 2;
  cfg.heads = 2;
  cfg.head_size = 16;
  return cfg;
}

std::shared_ptr<const core::BertModel> shared_model() {
  static std::shared_ptr<const core::BertModel> model = [] {
    Rng rng(4242);
    return std::make_shared<const core::BertModel>(
        core::BertModel::random(tiny_config(), rng));
  }();
  return model;
}

struct PolicyCase {
  BatchPolicy policy;
  core::OptFlags flags;
  int group_size;
};

std::vector<PolicyCase> all_policies() {
  return {
      {BatchPolicy::kPadToMax, core::OptFlags::bias_gelu_fused(), 0},
      {BatchPolicy::kSortGroup, core::OptFlags::layernorm_fused(), 2},
      {BatchPolicy::kPacked, core::OptFlags::byte_transformer(), 0},
  };
}

EnginePoolOptions pool_options(const PolicyCase& pc, int replicas,
                               RoutePolicy route, int max_batch_requests,
                               double max_wait_seconds) {
  EnginePoolOptions opts;
  opts.engine.engine.policy = pc.policy;
  opts.engine.engine.flags = pc.flags;
  opts.engine.engine.group_size = pc.group_size > 0 ? pc.group_size : 4;
  opts.engine.engine.max_batch_requests = max_batch_requests;
  opts.engine.max_wait_seconds = max_wait_seconds;
  opts.replicas = replicas;
  opts.route = route;
  opts.threads_per_replica = 1;
  return opts;
}

void expect_bits_equal(const Tensor<fp16_t>& got, const Tensor<fp16_t>& want) {
  ASSERT_EQ(got.rank(), 2);
  ASSERT_EQ(got.dim(0), want.dim(0));
  ASSERT_EQ(got.dim(1), want.dim(1));
  for (std::int64_t s = 0; s < got.dim(0); ++s) {
    for (std::int64_t j = 0; j < got.dim(1); ++j) {
      ASSERT_EQ(got(s, j).bits(), want(s, j).bits())
          << "row " << s << " col " << j;
    }
  }
}

// ---- shared weights ---------------------------------------------------------

TEST(EnginePool, ReplicasShareOneWeightsAndPackedPanelsCopy) {
  EnginePoolOptions opts =
      pool_options(all_policies()[2], /*replicas=*/3,
                   RoutePolicy::kRoundRobin, 8, 0.0);
  EnginePool pool(shared_model(), opts);
  ASSERT_EQ(pool.replicas(), 3u);

  const core::ModelWeights* canonical = pool.model().weights_ptr().get();
  const float* canonical_panel =
      canonical->layer(0).packed.qkv.panel(0, 0);
  ASSERT_TRUE(canonical->layer(0).packed.ready);
  for (std::size_t i = 0; i < pool.replicas(); ++i) {
    // Same ModelWeights object and the same physical PackedB storage: the
    // pool replicates schedulers and workspaces, never weights or panels.
    EXPECT_EQ(pool.replica(i).model().weights_ptr().get(), canonical);
    EXPECT_EQ(&pool.replica(i).model().weights(), canonical);
    EXPECT_EQ(pool.replica(i).model().weights().layer(0).packed.qkv.panel(0, 0),
              canonical_panel);
  }
  pool.stop();
}

TEST(EnginePool, SharedWeightsArePackedExactlyOnce) {
  Rng rng(77);
  auto weights = std::make_shared<core::ModelWeights>(
      core::ModelWeights::random(tiny_config(), rng));
  ASSERT_FALSE(weights->layers.front().packed.ready);

  core::BertModel first(weights);  // packs here
  ASSERT_TRUE(weights->layers.front().packed.ready);
  const float* panel_storage = weights->layers.front().packed.qkv.panel(0, 0);

  // A second model over the same weights must not re-pack: pack_panels
  // reports zero newly packed layers and the panel storage is untouched.
  EXPECT_EQ(weights->pack_panels(), 0u);
  core::BertModel second(weights);
  EXPECT_EQ(weights->layers.front().packed.qkv.panel(0, 0), panel_storage);
  EXPECT_EQ(first.weights_ptr().get(), second.weights_ptr().get());
}

// ---- bitwise equivalence ----------------------------------------------------

// The serving guarantee replication must not break: a request's output is a
// function of its content and the model only — not of the replica it landed
// on or the round composition there. Several submitter threads race into a
// 2-replica pool; every output must bit-match the same request served by a
// single AsyncEngine.
TEST(EnginePool, BitMatchesSingleAsyncEnginePerPolicyUnderConcurrentSubmitters) {
  constexpr int kThreads = 3;
  constexpr int kPerThread = 4;
  constexpr int kTotal = kThreads * kPerThread;
  const std::int64_t h = shared_model()->config().hidden();

  for (const PolicyCase& pc : all_policies()) {
    for (RoutePolicy route :
         {RoutePolicy::kRoundRobin, RoutePolicy::kLeastOutstandingTokens}) {
      EnginePool pool(shared_model(),
                      pool_options(pc, /*replicas=*/2, route,
                                   /*max_batch_requests=*/4,
                                   /*max_wait=*/0.0005));

      std::vector<Tensor<fp16_t>> inputs(kTotal);
      std::vector<std::future<Response>> futures(kTotal);
      std::vector<std::thread> submitters;
      for (int t = 0; t < kThreads; ++t) {
        submitters.emplace_back([&, t] {
          for (int j = 0; j < kPerThread; ++j) {
            const std::size_t slot =
                static_cast<std::size_t>(t * kPerThread + j);
            const int len = 2 + 3 * (static_cast<int>(slot) % 5);
            Rng rng(1000 + t * 100 + j);
            auto hidden = Tensor<fp16_t>::random_normal({len, h}, rng);
            inputs[slot] = hidden.clone();
            futures[slot] = pool.submit(Request{-1, std::move(hidden)});
          }
        });
      }
      for (auto& s : submitters) s.join();

      // Reference: the identical request contents served by one AsyncEngine
      // (caller ids = slots so responses map back).
      AsyncEngineOptions single = pool.options().engine;
      AsyncEngine reference(shared_model(), single);
      std::vector<std::future<Response>> want(kTotal);
      for (int slot = 0; slot < kTotal; ++slot) {
        want[static_cast<std::size_t>(slot)] = reference.submit(
            Request{slot, inputs[static_cast<std::size_t>(slot)].clone()});
      }

      for (int slot = 0; slot < kTotal; ++slot) {
        Response got = futures[static_cast<std::size_t>(slot)].get();
        Response ref = want[static_cast<std::size_t>(slot)].get();
        expect_bits_equal(got.output, ref.output);
      }
      pool.stop();
      reference.stop();
      EXPECT_EQ(pool.stats().requests, kTotal);
      EXPECT_EQ(pool.pending(), 0u);
    }
  }
}

// ---- routing ----------------------------------------------------------------

// Round-robin is a pure function of submission order, so a seeded arrival
// sequence reproduces the identical replica assignment — verified through
// the exact per-replica request and token splits, twice.
TEST(EnginePool, RoundRobinAssignmentIsDeterministic) {
  const std::vector<int> lens{2, 3, 4, 5, 6, 7};
  const std::int64_t h = shared_model()->config().hidden();

  for (int run = 0; run < 2; ++run) {
    EnginePool pool(shared_model(),
                    pool_options(all_policies()[2], /*replicas=*/2,
                                 RoutePolicy::kRoundRobin, 8,
                                 /*max_wait=*/30.0));
    std::vector<std::future<Response>> futures;
    Rng rng(55);
    for (int len : lens) {
      futures.push_back(
          pool.submit(Tensor<fp16_t>::random_normal({len, h}, rng)));
    }
    pool.stop();  // drains both replicas
    for (auto& f : futures) f.get();

    const auto rs = pool.replica_stats();
    ASSERT_EQ(rs.size(), 2u);
    // Evens (ids 0,2,4 -> lens 2,4,6) on replica 0, odds on replica 1.
    EXPECT_EQ(rs[0].routed_requests, 3);
    EXPECT_EQ(rs[0].routed_tokens, 2 + 4 + 6);
    EXPECT_EQ(rs[1].routed_requests, 3);
    EXPECT_EQ(rs[1].routed_tokens, 3 + 5 + 7);
    // Routed == served: each replica's engine accounting agrees.
    EXPECT_EQ(rs[0].engine.requests, 3);
    EXPECT_EQ(rs[1].engine.requests, 3);
    EXPECT_EQ(rs[0].engine.valid_tokens, 12);
    EXPECT_EQ(rs[1].engine.valid_tokens, 15);
  }
}

// Held-open windows keep every routed request outstanding, so the
// join-shortest-queue decisions are fully deterministic.
TEST(EnginePool, LeastOutstandingRoutingBalancesLoad) {
  const std::int64_t h = shared_model()->config().hidden();
  Rng rng(66);

  {  // least-outstanding-requests: a,c on replica 0; b on replica 1.
    EnginePool pool(shared_model(),
                    pool_options(all_policies()[2], 2,
                                 RoutePolicy::kLeastOutstandingRequests, 8,
                                 /*max_wait=*/30.0));
    auto a = pool.submit(Tensor<fp16_t>::random_normal({5, h}, rng));  // tie->0
    auto b = pool.submit(Tensor<fp16_t>::random_normal({3, h}, rng));  // 1<-0 busy
    auto c = pool.submit(Tensor<fp16_t>::random_normal({1, h}, rng));  // tie->0
    pool.stop();
    a.get(); b.get(); c.get();
    const auto rs = pool.replica_stats();
    EXPECT_EQ(rs[0].routed_requests, 2);
    EXPECT_EQ(rs[0].routed_tokens, 6);
    EXPECT_EQ(rs[1].routed_requests, 1);
    EXPECT_EQ(rs[1].routed_tokens, 3);
    EXPECT_EQ(rs[0].peak_outstanding, 2u);
  }

  {  // least-outstanding-tokens: balances rows, not request counts.
    EnginePool pool(shared_model(),
                    pool_options(all_policies()[2], 2,
                                 RoutePolicy::kLeastOutstandingTokens, 8,
                                 /*max_wait=*/30.0));
    auto a = pool.submit(Tensor<fp16_t>::random_normal({5, h}, rng));  // 0 (tie)
    auto b = pool.submit(Tensor<fp16_t>::random_normal({3, h}, rng));  // 1 (0<5)
    auto c = pool.submit(Tensor<fp16_t>::random_normal({1, h}, rng));  // 1 (3<5)
    auto d = pool.submit(Tensor<fp16_t>::random_normal({2, h}, rng));  // 1 (4<5)
    auto e = pool.submit(Tensor<fp16_t>::random_normal({9, h}, rng));  // 0 (5<6)
    pool.stop();
    a.get(); b.get(); c.get(); d.get(); e.get();
    const auto rs = pool.replica_stats();
    EXPECT_EQ(rs[0].routed_requests, 2);
    EXPECT_EQ(rs[0].routed_tokens, 5 + 9);
    EXPECT_EQ(rs[1].routed_requests, 3);
    EXPECT_EQ(rs[1].routed_tokens, 3 + 1 + 2);
  }
}

// ---- pool-wide id contract --------------------------------------------------

TEST(EnginePool, IdsAreUniqueAcrossReplicasAndDuplicatesRejected) {
  EnginePool pool(shared_model(),
                  pool_options(all_policies()[2], 2, RoutePolicy::kRoundRobin,
                               8, /*max_wait=*/30.0));
  const std::int64_t h = pool.hidden();
  Rng rng(8);

  // Auto ids count up pool-wide even though round-robin alternates replicas.
  auto f0 = pool.submit(Tensor<fp16_t>::random_normal({2, h}, rng));
  auto f1 = pool.submit(Tensor<fp16_t>::random_normal({2, h}, rng));
  // A caller-supplied id collides pool-wide, even when the router would have
  // sent it to the other replica.
  auto f7 = pool.submit(Request{7, Tensor<fp16_t>::random_normal({2, h}, rng)});
  EXPECT_THROW(
      pool.submit(Request{7, Tensor<fp16_t>::random_normal({2, h}, rng)}),
      std::invalid_argument);
  EXPECT_THROW(
      pool.submit(Request{0, Tensor<fp16_t>::random_normal({2, h}, rng)}),
      std::invalid_argument);
  // Malformed tensors throw the Engine contract's error.
  EXPECT_THROW(pool.submit(Tensor<fp16_t>::zeros({4})), std::invalid_argument);

  pool.stop();
  EXPECT_EQ(f0.get().id, 0);
  EXPECT_EQ(f1.get().id, 1);
  EXPECT_EQ(f7.get().id, 7);
}

// ---- lifecycle --------------------------------------------------------------

TEST(EnginePool, StopDrainsEveryReplicaAndRejectsLateSubmits) {
  EnginePool pool(shared_model(),
                  pool_options(all_policies()[2], 3, RoutePolicy::kRoundRobin,
                               8, /*max_wait=*/30.0));
  const std::int64_t h = pool.hidden();
  Rng rng(9);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 9; ++i) {
    futures.push_back(
        pool.submit(Tensor<fp16_t>::random_normal({1 + i % 5, h}, rng)));
  }
  pool.stop();  // all three replica windows are still open: stop must drain
  pool.stop();  // idempotent
  EXPECT_TRUE(pool.stopped());
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready)
        << "stop() returned before a replica finished draining";
    f.get();
  }
  EXPECT_EQ(pool.pending(), 0u);
  EXPECT_EQ(pool.pending_tokens(), 0);
  EXPECT_EQ(pool.stats().requests, 9);

  EXPECT_THROW(pool.submit(Tensor<fp16_t>::random_normal({3, h}, rng)),
               std::runtime_error);
  EXPECT_FALSE(
      pool.try_submit(Request{-1, Tensor<fp16_t>::random_normal({3, h}, rng)})
          .has_value());
}

TEST(EnginePool, TrySubmitDeclineDoesNotBurnTheCallerSuppliedId) {
  // One replica, one queue slot: occupy the scheduler with a long round and
  // fill the slot so the decline path is exercised deterministically.
  EnginePoolOptions opts =
      pool_options(all_policies()[2], 1, RoutePolicy::kRoundRobin, 1,
                   /*max_wait=*/0.0);
  opts.engine.max_queue = 1;
  EnginePool pool(shared_model(), opts);
  const std::int64_t h = pool.hidden();
  Rng rng(10);

  auto first = pool.submit(Tensor<fp16_t>::random_normal({512, h}, rng));
  auto second = pool.submit(Tensor<fp16_t>::random_normal({512, h}, rng));
  auto declined =
      pool.try_submit(Request{99, Tensor<fp16_t>::random_normal({4, h}, rng)});
  EXPECT_FALSE(declined.has_value());

  EXPECT_EQ(first.get().output.dim(0), 512);
  EXPECT_EQ(second.get().output.dim(0), 512);
  // The declined id was not reserved: resubmitting it succeeds.
  auto retry =
      pool.submit(Request{99, Tensor<fp16_t>::random_normal({4, h}, rng)});
  EXPECT_EQ(retry.get().id, 99);
  pool.stop();
  // Declined attempts also left no trace in the routing accounting.
  const auto rs = pool.replica_stats();
  EXPECT_EQ(rs[0].routed_requests, 3);
}

TEST(EnginePool, RejectsInconsistentOptions) {
  EnginePoolOptions opts =
      pool_options(all_policies()[2], 0, RoutePolicy::kRoundRobin, 8, 0.0);
  EXPECT_THROW(EnginePool(shared_model(), opts), std::invalid_argument);

  opts = pool_options(all_policies()[2], 2, RoutePolicy::kRoundRobin, 8, 0.0);
  opts.threads_per_replica = -1;
  EXPECT_THROW(EnginePool(shared_model(), opts), std::invalid_argument);

  EXPECT_THROW(
      EnginePool(std::shared_ptr<const core::BertModel>(),
                 pool_options(all_policies()[2], 1, RoutePolicy::kRoundRobin,
                              8, 0.0)),
      std::invalid_argument);

  // Replica-level validation surfaces through the pool constructor.
  opts = pool_options(all_policies()[2], 2, RoutePolicy::kRoundRobin, 0, 0.0);
  EXPECT_THROW(EnginePool(shared_model(), opts), std::invalid_argument);
}

}  // namespace
}  // namespace bt::serving
