// Cross-module property tests: invariances that hold across the whole
// pipeline regardless of shapes or scheduling.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "attention/attention.h"
#include "core/model.h"
#include "gemm/gemm.h"
#include "parallel/device.h"
#include "tensor/tensor.h"
#include "test_utils.h"

namespace bt {
namespace {

par::Device& dev() {
  static par::Device d(2);
  return d;
}

// Shuffling the sequences of a batch must shuffle the outputs identically:
// attention never mixes information across batch entries.
TEST(Property, FusedMhaIsBatchPermutationEquivariant) {
  constexpr int kHeads = 2;
  constexpr int kHd = 16;
  constexpr int kHidden = kHeads * kHd;
  Rng rng(901);
  const std::vector<int> lens{11, 4, 19, 7};
  const std::vector<int> perm{2, 0, 3, 1};
  const int max_seq = 19;

  // Original order.
  const auto off_a = core::build_seq_offsets(dev(), lens, max_seq);
  auto qkv_a = Tensor<fp16_t>::random_normal({off_a.valid_count, 3 * kHidden}, rng);
  auto bias = Tensor<fp16_t>::random_normal({3 * kHidden}, rng, 0.1f);

  // Permuted order: rebuild the packed tensor with rows moved wholesale.
  std::vector<int> lens_b;
  for (int p : perm) lens_b.push_back(lens[static_cast<std::size_t>(p)]);
  const auto off_b = core::build_seq_offsets(dev(), lens_b, max_seq);
  auto qkv_b = Tensor<fp16_t>::zeros({off_b.valid_count, 3 * kHidden});
  for (std::size_t bi = 0; bi < perm.size(); ++bi) {
    const int src = perm[bi];
    const std::int64_t src0 = off_a.batch_offset[static_cast<std::size_t>(src)];
    const std::int64_t dst0 = off_b.batch_offset[bi];
    for (int s = 0; s < lens_b[bi]; ++s) {
      for (int j = 0; j < 3 * kHidden; ++j) {
        qkv_b(dst0 + s, j) = qkv_a(src0 + s, j);
      }
    }
  }

  core::Workspace ws;
  auto ctx_a = Tensor<fp16_t>::zeros({off_a.valid_count, kHidden});
  auto ctx_b = Tensor<fp16_t>::zeros({off_b.valid_count, kHidden});
  attn::PackedMhaArgs args_a{qkv_a.data(), bias.data(), ctx_a.data(), &off_a,
                             kHeads, kHd};
  attn::PackedMhaArgs args_b{qkv_b.data(), bias.data(), ctx_b.data(), &off_b,
                             kHeads, kHd};
  attn::mha_fused(dev(), args_a, ws);
  attn::mha_fused(dev(), args_b, ws);

  for (std::size_t bi = 0; bi < perm.size(); ++bi) {
    const int src = perm[bi];
    const std::int64_t src0 = off_a.batch_offset[static_cast<std::size_t>(src)];
    const std::int64_t dst0 = off_b.batch_offset[bi];
    for (int s = 0; s < lens_b[bi]; ++s) {
      for (int j = 0; j < kHidden; ++j) {
        EXPECT_EQ(ctx_b(dst0 + s, j).bits(), ctx_a(src0 + s, j).bits())
            << "batch " << bi << " pos " << s;
      }
    }
  }
}

// GEMM is linear in alpha.
TEST(Property, GemmLinearInAlpha) {
  Rng rng(902);
  const int n = 96;
  auto a = Tensor<float>::random_normal({n, n}, rng);
  auto b = Tensor<float>::random_normal({n, n}, rng);
  auto c1 = Tensor<float>::zeros({n, n});
  auto c3 = Tensor<float>::zeros({n, n});
  gemm::gemm_f32(dev(), gemm::Trans::N, gemm::Trans::N, n, n, n, 1.0f,
                 a.data(), n, b.data(), n, 0.0f, c1.data(), n);
  gemm::gemm_f32(dev(), gemm::Trans::N, gemm::Trans::N, n, n, n, 3.0f,
                 a.data(), n, b.data(), n, 0.0f, c3.data(), n);
  for (std::int64_t i = 0; i < c1.size(); ++i) {
    EXPECT_NEAR(c3.data()[i], 3.0f * c1.data()[i], 1e-4);
  }
}

// The whole model is deterministic and worker-count independent: tile/CTA
// decomposition partitions all outputs, so 1-worker and 4-worker devices
// produce bit-identical results.
TEST(Property, ModelIsWorkerCountInvariant) {
  core::BertConfig cfg;
  cfg.layers = 2;
  cfg.heads = 2;
  cfg.head_size = 16;
  Rng rng(903);
  const core::BertModel model = core::BertModel::random(cfg, rng);
  auto in = test::make_varlen_input(dev(), std::vector<int>{13, 5, 20}, 20,
                                    cfg.hidden(), rng);
  par::Device d1(1);
  par::Device d4(4);
  core::Workspace ws1;
  core::Workspace ws4;
  auto out1 = Tensor<fp16_t>::zeros({in.padded.dim(0), cfg.hidden()});
  auto out4 = Tensor<fp16_t>::zeros({in.padded.dim(0), cfg.hidden()});
  model.forward(d1, in.padded.data(), out1.data(), in.off,
                core::OptFlags::byte_transformer(), ws1);
  model.forward(d4, in.padded.data(), out4.data(), in.off,
                core::OptFlags::byte_transformer(), ws4);
  for (std::int64_t i = 0; i < out1.size(); ++i) {
    EXPECT_EQ(out1.data()[i].bits(), out4.data()[i].bits());
  }
}

// Failure injection: a device whose scratch arena is too small for the short
// kernel must transparently fall back to the grouped path and still be
// correct.
TEST(Property, ShortKernelFallsBackOnTinyScratch) {
  constexpr int kHeads = 2;
  constexpr int kHd = 32;
  constexpr int kHidden = kHeads * kHd;
  const std::vector<int> lens{60, 33};
  const int max_seq = 60;
  Rng rng(904);
  const auto off = core::build_seq_offsets(dev(), lens, max_seq);
  auto qkv = Tensor<fp16_t>::random_normal({off.valid_count, 3 * kHidden}, rng);
  auto bias = Tensor<fp16_t>::random_normal({3 * kHidden}, rng, 0.1f);

  // Tiny scratch: far below the short kernel's demand, but the generic GEMM
  // tiles still fit (they need ~81 KiB... so give the grouped path enough).
  ASSERT_GT(attn::fused_short_scratch_bytes(max_seq, kHd), 16u * 1024u);
  par::Device tiny(2, /*scratch_bytes=*/96 * 1024);

  core::Workspace ws;
  auto ctx_tiny = Tensor<fp16_t>::zeros({off.valid_count, kHidden});
  auto ctx_ref = Tensor<fp16_t>::zeros({off.valid_count, kHidden});
  attn::PackedMhaArgs args{qkv.data(), bias.data(), ctx_tiny.data(), &off,
                           kHeads, kHd};
  attn::mha_fused_short(tiny, args, ws);  // must not crash: falls back
  args.ctx = ctx_ref.data();
  attn::mha_fused_long(dev(), args, ws);
  EXPECT_LT(max_abs_diff(ctx_tiny, ctx_ref), 3e-2);
}

// Workspace buffers may be reused across models and shapes without
// cross-contamination (grow-only semantics).
TEST(Property, WorkspaceSharedAcrossModels) {
  Rng rng(905);
  core::BertConfig big;
  big.layers = 1;
  big.heads = 2;
  big.head_size = 32;
  core::BertConfig small;
  small.layers = 1;
  small.heads = 1;
  small.head_size = 16;
  const auto model_big = core::BertModel::random(big, rng);
  const auto model_small = core::BertModel::random(small, rng);
  auto in_big = test::make_varlen_input(dev(), std::vector<int>{16, 9}, 16,
                                        big.hidden(), rng);
  auto in_small = test::make_varlen_input(dev(), std::vector<int>{5}, 8,
                                          small.hidden(), rng);

  core::Workspace shared;
  auto out_big = Tensor<fp16_t>::zeros({in_big.padded.dim(0), big.hidden()});
  model_big.forward(dev(), in_big.padded.data(), out_big.data(), in_big.off,
                    core::OptFlags::byte_transformer(), shared);

  auto out_shared = Tensor<fp16_t>::zeros({in_small.padded.dim(0), small.hidden()});
  auto out_fresh = Tensor<fp16_t>::zeros({in_small.padded.dim(0), small.hidden()});
  core::Workspace fresh;
  model_small.forward(dev(), in_small.padded.data(), out_shared.data(),
                      in_small.off, core::OptFlags::byte_transformer(), shared);
  model_small.forward(dev(), in_small.padded.data(), out_fresh.data(),
                      in_small.off, core::OptFlags::byte_transformer(), fresh);
  for (std::int64_t i = 0; i < out_fresh.size(); ++i) {
    EXPECT_EQ(out_shared.data()[i].bits(), out_fresh.data()[i].bits());
  }
}

// Doubling every sequence's content (same lengths, same values) through the
// packed pipeline twice gives identical results: no hidden state leaks
// between forward calls.
TEST(Property, RepeatedForwardIsIdempotent) {
  core::BertConfig cfg;
  cfg.layers = 1;
  cfg.heads = 2;
  cfg.head_size = 16;
  Rng rng(906);
  const auto model = core::BertModel::random(cfg, rng);
  auto in = test::make_varlen_input(dev(), std::vector<int>{7, 12}, 12,
                                    cfg.hidden(), rng);
  core::Workspace ws;
  auto out1 = Tensor<fp16_t>::zeros({in.padded.dim(0), cfg.hidden()});
  auto out2 = Tensor<fp16_t>::zeros({in.padded.dim(0), cfg.hidden()});
  model.forward(dev(), in.padded.data(), out1.data(), in.off,
                core::OptFlags::byte_transformer(), ws);
  model.forward(dev(), in.padded.data(), out2.data(), in.off,
                core::OptFlags::byte_transformer(), ws);
  for (std::int64_t i = 0; i < out1.size(); ++i) {
    EXPECT_EQ(out1.data()[i].bits(), out2.data()[i].bits());
  }
}

}  // namespace
}  // namespace bt
