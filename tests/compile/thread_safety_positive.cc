// Positive half of the thread-safety compile check (CMakeLists.txt,
// bt_check_thread_safety): this translation unit uses the annotated
// primitives exactly as the codebase does — guarded members accessed under
// MutexLock, a lock-held helper with BT_REQUIRES, an explicit CondVar wait
// loop, relock through the scoped lock, and a loop-thread capability — and
// must compile CLEAN under clang -Wthread-safety -Werror. If it fails, the
// annotation macros or wrappers are wrong, not the negative test.
#include "common/annotations.h"
#include "common/mutex.h"
#include "common/thread_checker.h"

namespace {

class Counter {
 public:
  void add(int n) BT_EXCLUDES(mutex_) {
    bt::MutexLock lock(mutex_);
    value_ += n;
    add_locked(n);
    while (value_ < 0) cv_.wait(mutex_);
    lock.unlock();
    lock.lock();
    value_ -= n;
  }

  int read() const BT_EXCLUDES(mutex_) {
    bt::MutexLock lock(mutex_);
    return value_;
  }

 private:
  void add_locked(int n) BT_REQUIRES(mutex_) { value_ += n; }

  mutable bt::Mutex mutex_;
  bt::CondVar cv_;
  int value_ BT_GUARDED_BY(mutex_) = 0;
};

class Loop {
 public:
  void run() {
    checker_.attach();
    tick();
  }

 private:
  void tick() BT_REQUIRES(checker_) { ++ticks_; }

  bt::LoopThreadChecker checker_;
  int ticks_ BT_GUARDED_BY(checker_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.add(1);
  Loop l;
  l.run();
  return c.read() == 1 ? 0 : 1;
}
