// Negative half of the thread-safety compile check (CMakeLists.txt,
// bt_check_thread_safety): an unguarded write to a BT_GUARDED_BY member.
// This file MUST FAIL to compile under clang -Wthread-safety -Werror —
// configure aborts with FATAL_ERROR if it compiles, because that means the
// annotations have silently stopped rejecting the exact bug class they
// exist to catch (e.g. the macros expanded to nothing under a compiler
// that should support them).
#include "common/annotations.h"
#include "common/mutex.h"

namespace {

class Counter {
 public:
  // No lock taken: under -Wthread-safety this is
  // "writing variable 'value_' requires holding mutex 'mutex_'".
  void add(int n) { value_ += n; }

  // Correct usage alongside, so the ONLY diagnostic this file can produce
  // is the guarded-access violation above (no unused-member noise).
  void reset() BT_EXCLUDES(mutex_) {
    bt::MutexLock lock(mutex_);
    value_ = 0;
  }

 private:
  bt::Mutex mutex_;
  int value_ BT_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.add(1);
  c.reset();
  return 0;
}
