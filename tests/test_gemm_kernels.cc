// The runtime-dispatched SIMD GEMM backend:
//   * every kernel variant x transpose combo x odd shapes x alpha/beta x
//     storage type x prepacked-vs-on-the-fly B against the FP64 reference,
//   * bitwise cross-checks between forced kernel variants (the variants
//     accumulate each output element over p ascending, so under uniform FMA
//     contraction they are interchangeable to the last bit),
//   * PackedB panel layout vs pack_b_panel,
//   * dispatch / BT_GEMM_KERNEL parsing and force() fallback behavior.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "gemm/batched.h"
#include "gemm/gemm.h"
#include "gemm/grouped.h"
#include "gemm/kernels/kernel.h"
#include "gemm/packed.h"
#include "parallel/device.h"
#include "tensor/tensor.h"

namespace bt::gemm {
namespace {

par::Device& dev() {
  static par::Device d(2);
  return d;
}

// Restores the dispatched kernel after a test that forces variants.
class KernelGuard {
 public:
  KernelGuard() : saved_(kernels::active()) {}
  ~KernelGuard() { kernels::force(saved_); }

 private:
  kernels::Kind saved_;
};

std::vector<kernels::Kind> supported_kinds() {
  std::vector<kernels::Kind> kinds;
  for (auto k : {kernels::Kind::kScalar, kernels::Kind::kVec,
                 kernels::Kind::kAvx2}) {
    if (kernels::supported(k)) kinds.push_back(k);
  }
  return kinds;
}

// (kernel, ta, tb, m, n, k, alpha, beta, prepacked)
using Case = std::tuple<kernels::Kind, Trans, Trans, int, int, int, float,
                        float, bool>;

std::vector<Case> all_cases() {
  const std::tuple<int, int, int> shapes[] = {
      {1, 1, 1},     {5, 3, 2},      {64, 64, 128}, {65, 63, 127},
      {33, 190, 77}, {130, 70, 200}, {17, 300, 5},
  };
  const std::pair<float, float> scales[] = {{1.0f, 0.0f}, {0.5f, 0.0f},
                                            {1.0f, 1.0f}, {2.0f, -0.5f}};
  std::vector<Case> cases;
  for (auto kind : supported_kinds()) {
    for (auto ta : {Trans::N, Trans::T}) {
      for (auto tb : {Trans::N, Trans::T}) {
        for (auto [m, n, k] : shapes) {
          for (auto [alpha, beta] : scales) {
            cases.emplace_back(kind, ta, tb, m, n, k, alpha, beta, false);
            // Prepacked covers op(B) baked into panels; exercised per tb.
            if (alpha == 1.0f && beta == 0.0f) {
              cases.emplace_back(kind, ta, tb, m, n, k, alpha, beta, true);
            }
          }
        }
      }
    }
  }
  return cases;
}

class KernelEquivalence : public ::testing::TestWithParam<Case> {};

template <typename T>
void run_case(const Case& c) {
  const auto [kind, ta, tb, m, n, k, alpha, beta, prepacked] = c;
  KernelGuard guard;
  ASSERT_TRUE(kernels::force(kind));

  Rng rng(static_cast<std::uint64_t>(m * 131071 + n * 8191 + k * 127 +
                                     static_cast<int>(kind) * 7 +
                                     (prepacked ? 3 : 0)));
  const std::int64_t a_rows = ta == Trans::N ? m : k;
  const std::int64_t a_cols = ta == Trans::N ? k : m;
  const std::int64_t b_rows = tb == Trans::N ? k : n;
  const std::int64_t b_cols = tb == Trans::N ? n : k;
  auto a = Tensor<T>::random_normal({a_rows, a_cols}, rng);
  auto b = Tensor<T>::random_normal({b_rows, b_cols}, rng);
  auto c_init = Tensor<T>::random_normal({m, n}, rng);
  auto c_out = c_init.clone();

  if (prepacked) {
    const PackedB pb = PackedB::pack(tb, b.data(), b_cols, k, n);
    gemm_prepacked(dev(), ta, m, n, k, alpha, a.data(), a_cols, pb, beta,
                   c_out.data(), n);
  } else {
    gemm<T, T, T>(dev(), ta, tb, m, n, k, alpha, a.data(), a_cols, b.data(),
                  b_cols, beta, c_out.data(), n);
  }

  std::vector<double> want(static_cast<std::size_t>(m) * n);
  gemm_reference(ta, tb, m, n, k, static_cast<double>(alpha), a.data(),
                 a_cols, b.data(), b_cols, want.data(), n);
  // FP32 accumulate (and for T = fp16_t, FP16 storage rounding) over k
  // unit-variance terms.
  const double tol = (std::is_same_v<T, fp16_t> ? 3e-2 : 1e-3) *
                     std::sqrt(static_cast<double>(k) + 1.0);
  double worst = 0;
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      const double got = load_f32(c_out(i, j));
      const double ref = want[static_cast<std::size_t>(i) * n + j] +
                         static_cast<double>(beta) * load_f32(c_init(i, j));
      worst = std::max(worst, std::abs(got - ref));
    }
  }
  EXPECT_LT(worst, tol) << "kernel=" << kernels::name(kind)
                        << " prepacked=" << prepacked;
}

TEST_P(KernelEquivalence, F32MatchesReference) { run_case<float>(GetParam()); }

TEST_P(KernelEquivalence, F16MatchesReference) { run_case<fp16_t>(GetParam()); }

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const auto [kind, ta, tb, m, n, k, alpha, beta, prepacked] = info.param;
  std::string s = kernels::name(kind);
  s += ta == Trans::N ? "_N" : "_T";
  s += tb == Trans::N ? "N" : "T";
  s += "_" + std::to_string(m) + "x" + std::to_string(n) + "x" +
       std::to_string(k);
  s += "_i" + std::to_string(info.index);
  return s;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelEquivalence,
                         ::testing::ValuesIn(all_cases()), case_name);

// Under uniform FMA contraction (BT_NATIVE_ARCH builds: -mfma +
// -ffp-contract=fast) every kernel performs the identical p-ascending FMA
// chain per output element, so forced variants must agree bit for bit.
#if defined(__FMA__)
TEST(KernelBitwise, ForcedVariantsAgreeBitwise) {
  KernelGuard guard;
  const int m = 130;
  const int n = 190;
  const int k = 260;
  Rng rng(7);
  auto a = Tensor<fp16_t>::random_normal({m, k}, rng);
  auto b = Tensor<fp16_t>::random_normal({k, n}, rng);

  ASSERT_TRUE(kernels::force(kernels::Kind::kScalar));
  auto c_scalar = Tensor<fp16_t>::zeros({m, n});
  gemm_f16(dev(), Trans::N, Trans::N, m, n, k, 1.0f, a.data(), k, b.data(), n,
           0.0f, c_scalar.data(), n);

  for (auto kind : supported_kinds()) {
    if (kind == kernels::Kind::kScalar) continue;
    ASSERT_TRUE(kernels::force(kind));
    auto c_kind = Tensor<fp16_t>::zeros({m, n});
    gemm_f16(dev(), Trans::N, Trans::N, m, n, k, 1.0f, a.data(), k, b.data(),
             n, 0.0f, c_kind.data(), n);
    for (std::int64_t i = 0; i < c_scalar.size(); ++i) {
      ASSERT_EQ(c_scalar.data()[i].bits(), c_kind.data()[i].bits())
          << "scalar vs " << kernels::name(kind) << " at " << i;
    }
  }
}
#endif  // __FMA__

TEST(KernelDispatch, ParseAcceptsExactlyTheThreeNames) {
  kernels::Kind k;
  EXPECT_TRUE(kernels::parse("scalar", &k));
  EXPECT_EQ(k, kernels::Kind::kScalar);
  EXPECT_TRUE(kernels::parse("vec", &k));
  EXPECT_EQ(k, kernels::Kind::kVec);
  EXPECT_TRUE(kernels::parse("avx2", &k));
  EXPECT_EQ(k, kernels::Kind::kAvx2);
  EXPECT_FALSE(kernels::parse("", &k));
  EXPECT_FALSE(kernels::parse("AVX2", &k));
  EXPECT_FALSE(kernels::parse("sse", &k));
}

TEST(KernelDispatch, ScalarAndVecAlwaysSupported) {
  EXPECT_TRUE(kernels::supported(kernels::Kind::kScalar));
  EXPECT_TRUE(kernels::supported(kernels::Kind::kVec));
}

TEST(KernelDispatch, ForceRoundTripsAndRejectsUnsupported) {
  KernelGuard guard;
  for (auto kind : supported_kinds()) {
    EXPECT_TRUE(kernels::force(kind));
    EXPECT_EQ(kernels::active(), kind);
  }
  if (!kernels::supported(kernels::Kind::kAvx2)) {
    const auto before = kernels::active();
    EXPECT_FALSE(kernels::force(kernels::Kind::kAvx2));
    EXPECT_EQ(kernels::active(), before);
  }
}

TEST(PackedB, PanelsMatchPackBPanel) {
  const int k = 200;  // 2 K blocks, ragged
  const int n = 100;  // 2 column tiles, ragged
  Rng rng(11);
  auto b = Tensor<fp16_t>::random_normal({k, n}, rng);
  const PackedB pb = PackedB::pack(Trans::N, b.data(), n, k, n);
  EXPECT_EQ(pb.k_blocks(), 2);
  EXPECT_EQ(pb.tiles_n(), 2);

  std::vector<float> want(static_cast<std::size_t>(PackedB::kPanelElems));
  for (std::int64_t tn = 0; tn < pb.tiles_n(); ++tn) {
    for (std::int64_t k0 = 0; k0 < k; k0 += TileShape::kK) {
      const int kc = static_cast<int>(
          std::min<std::int64_t>(TileShape::kK, k - k0));
      const int nc = static_cast<int>(
          std::min<std::int64_t>(TileShape::kN, n - tn * TileShape::kN));
      std::fill(want.begin(), want.end(), 0.0f);
      pack_b_panel(Trans::N, b.data(), n, k0, tn * TileShape::kN, kc, nc,
                   want.data());
      EXPECT_EQ(std::memcmp(pb.panel(tn, k0), want.data(),
                            want.size() * sizeof(float)),
                0)
          << "tile_n=" << tn << " k0=" << k0;
    }
  }
}

TEST(PackedB, PrepackedGemmBitwiseEqualsOnTheFly) {
  // The panels are byte-identical to pack_b_panel output, so the whole GEMM
  // must match bit for bit — for every supported kernel.
  KernelGuard guard;
  const int m = 97;
  const int n = 129;
  const int k = 150;
  Rng rng(13);
  auto a = Tensor<fp16_t>::random_normal({m, k}, rng);
  auto b = Tensor<fp16_t>::random_normal({k, n}, rng);
  const PackedB pb = PackedB::pack(Trans::N, b.data(), n, k, n);
  for (auto kind : supported_kinds()) {
    ASSERT_TRUE(kernels::force(kind));
    auto c_fly = Tensor<fp16_t>::zeros({m, n});
    auto c_pre = Tensor<fp16_t>::zeros({m, n});
    gemm_f16(dev(), Trans::N, Trans::N, m, n, k, 1.0f, a.data(), k, b.data(),
             n, 0.0f, c_fly.data(), n);
    gemm_prepacked(dev(), Trans::N, m, n, k, 1.0f, a.data(), k, pb, 0.0f,
                   c_pre.data(), n);
    for (std::int64_t i = 0; i < c_fly.size(); ++i) {
      ASSERT_EQ(c_fly.data()[i].bits(), c_pre.data()[i].bits())
          << "kernel=" << kernels::name(kind) << " at " << i;
    }
  }
}

TEST(PackedB, BatchedPrepackedBitwiseEqualsOnTheFly) {
  const int batch = 3;
  const int m = 70;
  const int n = 65;
  const int k = 140;
  Rng rng(17);
  auto a = Tensor<fp16_t>::random_normal({batch * m, k}, rng);
  auto b = Tensor<fp16_t>::random_normal({k, n}, rng);  // shared across batch
  const PackedB pb = PackedB::pack(Trans::N, b.data(), n, k, n);
  auto c_fly = Tensor<fp16_t>::zeros({batch * m, n});
  auto c_pre = Tensor<fp16_t>::zeros({batch * m, n});
  batched_gemm<fp16_t, fp16_t, fp16_t>(
      dev(), Trans::N, Trans::N, batch, m, n, k, 1.0f, a.data(), k,
      static_cast<std::int64_t>(m) * k, b.data(), n, /*stride_b=*/0, 0.0f,
      c_fly.data(), n, static_cast<std::int64_t>(m) * n);
  batched_gemm_prepacked(dev(), Trans::N, batch, m, n, k, 1.0f, a.data(), k,
                         static_cast<std::int64_t>(m) * k, pb, 0.0f,
                         c_pre.data(), n, static_cast<std::int64_t>(m) * n);
  for (std::int64_t i = 0; i < c_fly.size(); ++i) {
    ASSERT_EQ(c_fly.data()[i].bits(), c_pre.data()[i].bits()) << i;
  }
}

TEST(PackedB, GroupedPackedBProblemsBitwiseEqualOnTheFly) {
  // Mixed grouped batch: some problems carry persistent panels, some pack
  // on the fly; both routes must agree bitwise with the all-dynamic run.
  Rng rng(19);
  const std::tuple<int, int, int> shapes[] = {
      {70, 64, 64}, {40, 130, 200}, {128, 64, 512}};
  std::vector<Tensor<fp16_t>> as, bs;
  std::vector<Tensor<fp16_t>> c_fly, c_mix;
  std::vector<PackedB> packed;
  std::vector<GroupedProblem<fp16_t, fp16_t, fp16_t>> fly, mix;
  for (auto [m, n, k] : shapes) {
    as.push_back(Tensor<fp16_t>::random_normal({m, k}, rng));
    bs.push_back(Tensor<fp16_t>::random_normal({k, n}, rng));
    c_fly.push_back(Tensor<fp16_t>::zeros({m, n}));
    c_mix.push_back(Tensor<fp16_t>::zeros({m, n}));
    packed.push_back(PackedB::pack(Trans::N, bs.back().data(), n, k, n));
  }
  for (std::size_t i = 0; i < std::size(shapes); ++i) {
    const auto [m, n, k] = shapes[i];
    GroupedProblem<fp16_t, fp16_t, fp16_t> p;
    p.m = m;
    p.n = n;
    p.k = k;
    p.a = as[i].data();
    p.lda = k;
    p.b = bs[i].data();
    p.ldb = n;
    p.ldc = n;
    p.c = c_fly[i].data();
    fly.push_back(p);
    p.c = c_mix[i].data();
    if (i % 2 == 0) p.packed_b = &packed[i];
    mix.push_back(p);
  }
  grouped_gemm<fp16_t, fp16_t, fp16_t>(
      dev(), Trans::N, Trans::N,
      std::span<const GroupedProblem<fp16_t, fp16_t, fp16_t>>(fly), 1.0f,
      0.0f);
  grouped_gemm<fp16_t, fp16_t, fp16_t>(
      dev(), Trans::N, Trans::N,
      std::span<const GroupedProblem<fp16_t, fp16_t, fp16_t>>(mix), 1.0f,
      0.0f);
  for (std::size_t i = 0; i < std::size(shapes); ++i) {
    for (std::int64_t j = 0; j < c_fly[i].size(); ++j) {
      ASSERT_EQ(c_fly[i].data()[j].bits(), c_mix[i].data()[j].bits())
          << "problem " << i << " elem " << j;
    }
  }
}

TEST(PackedB, TransposedPackMatchesReference) {
  // op(B) = B^T baked into the panels at pack time.
  const int m = 33;
  const int n = 150;
  const int k = 70;
  Rng rng(23);
  auto a = Tensor<float>::random_normal({m, k}, rng);
  auto b = Tensor<float>::random_normal({n, k}, rng);  // stored n x k
  const PackedB pb = PackedB::pack(Trans::T, b.data(), k, k, n);
  auto c = Tensor<float>::zeros({m, n});
  gemm_prepacked(dev(), Trans::N, m, n, k, 1.0f, a.data(), k, pb, 0.0f,
                 c.data(), n);
  std::vector<double> want(static_cast<std::size_t>(m) * n);
  gemm_reference(Trans::N, Trans::T, m, n, k, 1.0, a.data(), k, b.data(), k,
                 want.data(), n);
  for (std::int64_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.data()[i], want[static_cast<std::size_t>(i)], 2e-3);
  }
}

TEST(CtaScratchDeath, OverflowAbortsLoudly) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  par::CtaScratch scratch(1024);
  EXPECT_DEATH(scratch.alloc_or_abort<float>(1024, "oversized panel"),
               "oversized panel");
}

}  // namespace
}  // namespace bt::gemm
