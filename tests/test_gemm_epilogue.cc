// Epilogue and mainloop fusion hooks: fused results must equal the unfused
// kernel sequences they replace.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "gemm/epilogues.h"
#include "gemm/gemm.h"
#include "kernels/activation.h"
#include "parallel/device.h"
#include "tensor/tensor.h"

namespace bt::gemm {
namespace {

par::Device& dev() {
  static par::Device d(2);
  return d;
}

TEST(Epilogue, BiasMatchesSeparateAddBias) {
  const int m = 70;
  const int n = 130;
  const int k = 64;
  Rng rng(21);
  auto a = Tensor<fp16_t>::random_normal({m, k}, rng);
  auto b = Tensor<fp16_t>::random_normal({k, n}, rng);
  auto bias = Tensor<fp16_t>::random_normal({n}, rng);

  auto fused = Tensor<fp16_t>::zeros({m, n});
  const BiasEpilogue<fp16_t> ep{bias.data()};
  gemm<fp16_t, fp16_t, fp16_t, IdentityATransform, BiasEpilogue<fp16_t>>(
      dev(), Trans::N, Trans::N, m, n, k, 1.0f, a.data(), k, b.data(), n,
      0.0f, fused.data(), n, ep);

  auto unfused = Tensor<fp16_t>::zeros({m, n});
  gemm_f16(dev(), Trans::N, Trans::N, m, n, k, 1.0f, a.data(), k, b.data(), n,
           0.0f, unfused.data(), n);
  bt::kernels::add_bias(dev(), unfused.data(), bias.data(), m, n);

  // Fused avoids one FP16 round trip, so allow one ulp of divergence.
  EXPECT_LT(max_abs_diff(fused, unfused), 2e-2);
}

TEST(Epilogue, BiasGeluMatchesSeparateKernels) {
  const int m = 65;
  const int n = 257;
  const int k = 96;
  Rng rng(22);
  auto a = Tensor<fp16_t>::random_normal({m, k}, rng);
  auto b = Tensor<fp16_t>::random_normal({k, n}, rng);
  auto bias = Tensor<fp16_t>::random_normal({n}, rng);

  auto fused = Tensor<fp16_t>::zeros({m, n});
  const BiasGeluEpilogue<fp16_t> ep{bias.data()};
  gemm<fp16_t, fp16_t, fp16_t, IdentityATransform, BiasGeluEpilogue<fp16_t>>(
      dev(), Trans::N, Trans::N, m, n, k, 1.0f, a.data(), k, b.data(), n,
      0.0f, fused.data(), n, ep);

  auto unfused = Tensor<fp16_t>::zeros({m, n});
  gemm_f16(dev(), Trans::N, Trans::N, m, n, k, 1.0f, a.data(), k, b.data(), n,
           0.0f, unfused.data(), n);
  bt::kernels::add_bias_gelu(dev(), unfused.data(), bias.data(), m, n);

  // The unfused path rounds the GEMM result to FP16 *before* GELU; with
  // k = 96 unit-variance inputs the pre-activation reaches |v| ~ 40 where
  // the FP16 ulp is 0.03125 — that one rounding step is the allowed gap.
  EXPECT_LT(max_abs_diff(fused, unfused), 5e-2);
}

TEST(Epilogue, SoftmaxPartialReductionIsExactPerTile) {
  // Feed a known matrix through the epilogue via a plain GEMM (A = diag-ish
  // trick: multiply by identity) and verify the per-tile max/sum pairs.
  const int m = 70;   // two row tiles
  const int n = 130;  // three col tiles (64, 64, 2)
  Rng rng(23);
  auto values = Tensor<fp16_t>::random_normal({m, n}, rng);
  auto identity = Tensor<fp16_t>::zeros({m, m});
  for (int i = 0; i < m; ++i) identity(i, i) = fp16_t(1.0f);

  const std::int64_t col_tiles = ceil_div(n, TileShape::kN);
  std::vector<float> pmax(static_cast<std::size_t>(m * col_tiles), -1.0f);
  std::vector<float> psum(static_cast<std::size_t>(m * col_tiles), -1.0f);
  std::vector<SoftmaxPartials> partials{
      {pmax.data(), psum.data(), col_tiles, m}};

  auto out = Tensor<fp16_t>::zeros({m, n});
  const SoftmaxPartialReduceEpilogue ep{partials};
  gemm<fp16_t, fp16_t, fp16_t, IdentityATransform,
       SoftmaxPartialReduceEpilogue>(dev(), Trans::N, Trans::N, m, n, m, 1.0f,
                                     identity.data(), m, values.data(), n,
                                     0.0f, out.data(), n, ep);

  // The GEMM output must equal the input (identity multiply)...
  EXPECT_LT(max_abs_diff(out, values), 1e-6);
  // ...and the partials must match a direct per-tile reduction.
  for (int i = 0; i < m; ++i) {
    for (std::int64_t t = 0; t < col_tiles; ++t) {
      const int j0 = static_cast<int>(t) * TileShape::kN;
      const int j1 = std::min(n, j0 + TileShape::kN);
      float mx = -INFINITY;
      for (int j = j0; j < j1; ++j) {
        mx = std::max(mx, load_f32(values(i, j)));
      }
      float sum = 0;
      for (int j = j0; j < j1; ++j) {
        sum += std::exp(load_f32(values(i, j)) - mx);
      }
      EXPECT_NEAR(pmax[static_cast<std::size_t>(i * col_tiles + t)], mx, 1e-5);
      EXPECT_NEAR(psum[static_cast<std::size_t>(i * col_tiles + t)], sum, 1e-4);
    }
  }
}

TEST(Epilogue, FullReduceCombinesPartials) {
  // Two tiles with different maxima: full reduce must renormalize sums.
  const std::int64_t rows = 2;
  const std::int64_t col_tiles = 2;
  std::vector<float> pmax{1.0f, 3.0f,   // row 0
                          -2.0f, -2.0f};  // row 1
  std::vector<float> psum{2.0f, 5.0f, 1.5f, 2.5f};
  SoftmaxPartials p{pmax.data(), psum.data(), col_tiles, rows};
  std::vector<float> rmax(2);
  std::vector<float> rinv(2);
  softmax_full_reduce(p, col_tiles, rmax.data(), rinv.data());
  EXPECT_FLOAT_EQ(rmax[0], 3.0f);
  EXPECT_NEAR(rinv[0], 1.0f / (2.0f * std::exp(1.0f - 3.0f) + 5.0f), 1e-6);
  EXPECT_FLOAT_EQ(rmax[1], -2.0f);
  EXPECT_NEAR(rinv[1], 1.0f / 4.0f, 1e-6);
}

TEST(Epilogue, NormalizeATransformAppliesSoftmax) {
  // One problem, one row: the A transform must turn raw scores into
  // softmax probabilities during packing. Verify via a GEMM against a
  // one-column ones vector: result = sum of probabilities = 1.
  const int n_rows = 50;
  const int n_cols = 80;
  Rng rng(24);
  auto scores = Tensor<fp16_t>::random_normal({n_rows, n_cols}, rng);

  // Row stats computed directly.
  std::vector<float> rmax(static_cast<std::size_t>(n_rows));
  std::vector<float> rinv(static_cast<std::size_t>(n_rows));
  for (int i = 0; i < n_rows; ++i) {
    float mx = -INFINITY;
    for (int j = 0; j < n_cols; ++j) {
      mx = std::max(mx, load_f32(scores(i, j)));
    }
    float sum = 0;
    for (int j = 0; j < n_cols; ++j) {
      sum += std::exp(load_f32(scores(i, j)) - mx);
    }
    rmax[static_cast<std::size_t>(i)] = mx;
    rinv[static_cast<std::size_t>(i)] = 1.0f / sum;
  }
  std::vector<SoftmaxRowStats> stats{{rmax.data(), rinv.data()}};

  auto ones = Tensor<fp16_t>({n_cols, 1});
  ones.fill(fp16_t(1.0f));
  auto out = Tensor<fp16_t>::zeros({n_rows, 1});
  const SoftmaxNormalizeATransform at{stats};
  gemm<fp16_t, fp16_t, fp16_t, SoftmaxNormalizeATransform>(
      dev(), Trans::N, Trans::N, n_rows, 1, n_cols, 1.0f, scores.data(),
      n_cols, ones.data(), 1, 0.0f, out.data(), 1, {}, at);
  for (int i = 0; i < n_rows; ++i) {
    EXPECT_NEAR(load_f32(out(i, 0)), 1.0f, 5e-3) << "row " << i;
  }
}

}  // namespace
}  // namespace bt::gemm
