// Single-problem GEMM vs FP64 reference, parameterized over shapes,
// transposes, storage types, alpha/beta and strided leading dimensions.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/rng.h"
#include "gemm/gemm.h"
#include "parallel/device.h"
#include "tensor/tensor.h"

namespace bt::gemm {
namespace {

par::Device& dev() {
  static par::Device d(2);
  return d;
}

// (m, n, k): chosen to hit every tile-edge case of the 64x64x128 blocking.
using Shape = std::tuple<int, int, int>;

class GemmShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(GemmShapes, F32MatchesReference) {
  const auto [m, n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 1000003 + n * 1009 + k));
  auto a = Tensor<float>::random_normal({m, k}, rng);
  auto b = Tensor<float>::random_normal({k, n}, rng);
  auto c = Tensor<float>::zeros({m, n});
  gemm_f32(dev(), Trans::N, Trans::N, m, n, k, 1.0f, a.data(), k, b.data(), n,
           0.0f, c.data(), n);

  std::vector<double> want(static_cast<std::size_t>(m) * n);
  gemm_reference(Trans::N, Trans::N, m, n, k, 1.0, a.data(), k, b.data(), n,
                 want.data(), n);
  double worst = 0;
  for (std::int64_t i = 0; i < c.size(); ++i) {
    worst = std::max(worst, std::abs(c.data()[i] - want[static_cast<std::size_t>(i)]));
  }
  // FP32 accumulate over k terms of unit-variance products.
  EXPECT_LT(worst, 1e-3 * std::sqrt(static_cast<double>(k)));
}

TEST_P(GemmShapes, F16MatchesReferenceWithRoundoff) {
  const auto [m, n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 7 + n * 13 + k * 31));
  auto a = Tensor<fp16_t>::random_normal({m, k}, rng);
  auto b = Tensor<fp16_t>::random_normal({k, n}, rng);
  auto c = Tensor<fp16_t>::zeros({m, n});
  gemm_f16(dev(), Trans::N, Trans::N, m, n, k, 1.0f, a.data(), k, b.data(), n,
           0.0f, c.data(), n);

  std::vector<double> want(static_cast<std::size_t>(m) * n);
  gemm_reference(Trans::N, Trans::N, m, n, k, 1.0, a.data(), k, b.data(), n,
                 want.data(), n);
  double worst = 0;
  for (std::int64_t i = 0; i < c.size(); ++i) {
    worst = std::max(worst, std::abs(static_cast<double>(load_f32(c.data()[i])) -
                                     want[static_cast<std::size_t>(i)]));
  }
  // Result rounding to FP16 dominates: ~2^-11 relative on values ~sqrt(k).
  EXPECT_LT(worst, 3e-2 * std::sqrt(static_cast<double>(k)));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(Shape{1, 1, 1}, Shape{1, 64, 64}, Shape{64, 1, 64},
                      Shape{64, 64, 1}, Shape{64, 64, 64},
                      Shape{64, 64, 128}, Shape{64, 64, 129},
                      Shape{65, 63, 127}, Shape{128, 128, 128},
                      Shape{100, 100, 100}, Shape{33, 190, 77},
                      Shape{256, 48, 192}, Shape{17, 300, 5}));

class GemmTrans
    : public ::testing::TestWithParam<std::tuple<Trans, Trans>> {};

TEST_P(GemmTrans, AllTransposeCombinations) {
  const auto [ta, tb] = GetParam();
  const int m = 70;
  const int n = 90;
  const int k = 110;
  Rng rng(99);
  // Allocate operands in their storage shape.
  const std::int64_t a_rows = ta == Trans::N ? m : k;
  const std::int64_t a_cols = ta == Trans::N ? k : m;
  const std::int64_t b_rows = tb == Trans::N ? k : n;
  const std::int64_t b_cols = tb == Trans::N ? n : k;
  auto a = Tensor<float>::random_normal({a_rows, a_cols}, rng);
  auto b = Tensor<float>::random_normal({b_rows, b_cols}, rng);
  auto c = Tensor<float>::zeros({m, n});
  gemm<float, float, float>(dev(), ta, tb, m, n, k, 1.0f, a.data(), a_cols,
                            b.data(), b_cols, 0.0f, c.data(), n);

  std::vector<double> want(static_cast<std::size_t>(m) * n);
  gemm_reference(ta, tb, m, n, k, 1.0, a.data(), a_cols, b.data(), b_cols,
                 want.data(), n);
  for (std::int64_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.data()[i], want[static_cast<std::size_t>(i)], 2e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(
    TransCombos, GemmTrans,
    ::testing::Combine(::testing::Values(Trans::N, Trans::T),
                       ::testing::Values(Trans::N, Trans::T)));

TEST(Gemm, AlphaScalesResult) {
  const int m = 32;
  const int n = 32;
  const int k = 32;
  Rng rng(1);
  auto a = Tensor<float>::random_normal({m, k}, rng);
  auto b = Tensor<float>::random_normal({k, n}, rng);
  auto c1 = Tensor<float>::zeros({m, n});
  auto c2 = Tensor<float>::zeros({m, n});
  gemm_f32(dev(), Trans::N, Trans::N, m, n, k, 1.0f, a.data(), k, b.data(), n,
           0.0f, c1.data(), n);
  gemm_f32(dev(), Trans::N, Trans::N, m, n, k, 2.5f, a.data(), k, b.data(), n,
           0.0f, c2.data(), n);
  for (std::int64_t i = 0; i < c1.size(); ++i) {
    EXPECT_NEAR(c2.data()[i], 2.5f * c1.data()[i], 1e-4);
  }
}

TEST(Gemm, BetaAccumulatesIntoC) {
  const int m = 48;
  const int n = 48;
  const int k = 16;
  Rng rng(2);
  auto a = Tensor<float>::random_normal({m, k}, rng);
  auto b = Tensor<float>::random_normal({k, n}, rng);
  auto c = Tensor<float>({m, n});
  c.fill(10.0f);
  auto want = c.clone();
  gemm_f32(dev(), Trans::N, Trans::N, m, n, k, 1.0f, a.data(), k, b.data(), n,
           0.5f, c.data(), n);
  std::vector<double> prod(static_cast<std::size_t>(m) * n);
  gemm_reference(Trans::N, Trans::N, m, n, k, 1.0, a.data(), k, b.data(), n,
                 prod.data(), n);
  for (std::int64_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.data()[i], prod[static_cast<std::size_t>(i)] + 0.5 * 10.0, 1e-3);
  }
  (void)want;
}

TEST(Gemm, StridedLeadingDimensions) {
  // Operate on a sub-matrix embedded in a wider allocation — the access
  // pattern the packed attention uses (per-head column slices, ld = hidden).
  const int m = 40;
  const int n = 24;
  const int k = 64;
  const int lda = 200;
  const int ldb = 150;
  const int ldc = 99;
  Rng rng(3);
  auto a = Tensor<float>::random_normal({m, lda}, rng);
  auto b = Tensor<float>::random_normal({k, ldb}, rng);
  auto c = Tensor<float>::zeros({m, ldc});
  gemm_f32(dev(), Trans::N, Trans::N, m, n, k, 1.0f, a.data(), lda, b.data(),
           ldb, 0.0f, c.data(), ldc);
  std::vector<double> want(static_cast<std::size_t>(m) * n);
  gemm_reference(Trans::N, Trans::N, m, n, k, 1.0, a.data(), lda, b.data(),
                 ldb, want.data(), n);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      EXPECT_NEAR(c(i, j), want[static_cast<std::size_t>(i) * n + j], 2e-3);
    }
  }
}

TEST(Gemm, EmptyProblemIsNoOp) {
  auto c = Tensor<float>({4, 4});
  c.fill(7.0f);
  gemm_f32(dev(), Trans::N, Trans::N, 0, 4, 4, 1.0f, nullptr, 4, nullptr, 4,
           0.0f, c.data(), 4);
  gemm_f32(dev(), Trans::N, Trans::N, 4, 0, 4, 1.0f, nullptr, 4, nullptr, 4,
           0.0f, c.data(), 4);
  for (std::int64_t i = 0; i < 16; ++i) EXPECT_EQ(c.data()[i], 7.0f);
}

TEST(Gemm, KZeroProducesZero) {
  auto c = Tensor<float>({4, 4});
  c.fill(7.0f);
  const float dummy = 0.0f;
  gemm_f32(dev(), Trans::N, Trans::N, 4, 4, 0, 1.0f, &dummy, 1, &dummy, 4,
           0.0f, c.data(), 4);
  for (std::int64_t i = 0; i < 16; ++i) EXPECT_EQ(c.data()[i], 0.0f);
}

TEST(Gemm, DeterministicAcrossWorkerCounts) {
  // Tiles partition the output, so 1-worker and N-worker runs must produce
  // bit-identical results.
  const int m = 130;
  const int n = 70;
  const int k = 200;
  Rng rng(5);
  auto a = Tensor<fp16_t>::random_normal({m, k}, rng);
  auto b = Tensor<fp16_t>::random_normal({k, n}, rng);
  auto c1 = Tensor<fp16_t>::zeros({m, n});
  auto c2 = Tensor<fp16_t>::zeros({m, n});
  par::Device d1(1);
  par::Device d4(4);
  gemm_f16(d1, Trans::N, Trans::N, m, n, k, 1.0f, a.data(), k, b.data(), n,
           0.0f, c1.data(), n);
  gemm_f16(d4, Trans::N, Trans::N, m, n, k, 1.0f, a.data(), k, b.data(), n,
           0.0f, c2.data(), n);
  for (std::int64_t i = 0; i < c1.size(); ++i) {
    EXPECT_EQ(c1.data()[i].bits(), c2.data()[i].bits());
  }
}

}  // namespace
}  // namespace bt::gemm
