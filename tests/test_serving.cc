// Request generation and batching policies.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "serving/batching.h"
#include "serving/request_gen.h"

namespace bt::serving {
namespace {

TEST(RequestGen, LengthsWithinBounds) {
  Rng rng(201);
  for (double alpha : {0.1, 0.3, 0.5, 0.6, 0.9, 1.0}) {
    const auto lens = gen_lengths(1000, 128, alpha, rng);
    for (int l : lens) {
      EXPECT_GE(l, 1);
      EXPECT_LE(l, 128);
    }
  }
}

TEST(RequestGen, MeanTracksAlpha) {
  Rng rng(202);
  for (double alpha : {0.2, 0.4, 0.6, 0.8}) {
    const auto lens = gen_lengths(20000, 256, alpha, rng);
    double mean = 0;
    for (int l : lens) mean += l;
    mean /= static_cast<double>(lens.size());
    EXPECT_NEAR(mean / 256.0, alpha, 0.03) << "alpha=" << alpha;
  }
}

TEST(RequestGen, AlphaOneIsAllMax) {
  Rng rng(203);
  const auto lens = gen_lengths(100, 64, 1.0, rng);
  for (int l : lens) EXPECT_EQ(l, 64);
}

TEST(RequestGen, ArrivalsAreMonotone) {
  Rng rng(204);
  const auto t = gen_arrivals(500, 100.0, rng);
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_GT(t[i], t[i - 1]);
  }
  // Mean inter-arrival ~ 1/rate.
  EXPECT_NEAR(t.back() / 500.0, 0.01, 0.004);
}

TEST(Batching, GroupsRespectSizeAndOrder) {
  const std::vector<int> lens{5, 30, 12, 64, 8, 40, 22, 3};
  const auto groups = group_by_length(lens, 3);
  EXPECT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].indices.size(), 3u);
  EXPECT_EQ(groups[2].indices.size(), 2u);
  // First group holds the longest requests; its pad target is the global max.
  EXPECT_EQ(groups[0].max_len, 64);
  // Groups are sorted descending: later groups have smaller pad targets.
  EXPECT_GE(groups[0].max_len, groups[1].max_len);
  EXPECT_GE(groups[1].max_len, groups[2].max_len);
  // Every index appears exactly once.
  std::vector<int> all;
  for (const auto& g : groups) {
    all.insert(all.end(), g.indices.begin(), g.indices.end());
  }
  std::sort(all.begin(), all.end());
  for (int i = 0; i < 8; ++i) EXPECT_EQ(all[static_cast<std::size_t>(i)], i);
}

TEST(Batching, GroupSizeZeroMeansPadToMax) {
  const std::vector<int> lens{5, 30, 12};
  const auto groups = group_by_length(lens, 0);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].max_len, 30);
  EXPECT_EQ(padded_tokens(groups, lens), 3 * 30);
}

TEST(Batching, GroupingReducesPaddedTokens) {
  Rng rng(205);
  const auto lens = gen_lengths(64, 512, 0.5, rng);
  const auto one = group_by_length(lens, 0);
  const auto grouped = group_by_length(lens, 8);
  long long valid = 0;
  for (int l : lens) valid += l;
  EXPECT_LT(padded_tokens(grouped, lens), padded_tokens(one, lens));
  // But grouping never reaches the packed (zero-waste) level for non-uniform
  // lengths.
  EXPECT_GT(padded_tokens(grouped, lens), valid);
}

TEST(Batching, SingleRequestGroup) {
  const std::vector<int> lens{17};
  const auto groups = group_by_length(lens, 4);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].max_len, 17);
  EXPECT_EQ(padded_tokens(groups, lens), 17);
}

}  // namespace
}  // namespace bt::serving
