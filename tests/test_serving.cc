// Request generation, batching policies, and the batch scheduler.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "serving/batching.h"
#include "serving/request_gen.h"
#include "serving/scheduler.h"

namespace bt::serving {
namespace {

TEST(RequestGen, LengthsWithinBounds) {
  Rng rng(201);
  for (double alpha : {0.1, 0.3, 0.5, 0.6, 0.9, 1.0}) {
    const auto lens = gen_lengths(1000, 128, alpha, rng);
    for (int l : lens) {
      EXPECT_GE(l, 1);
      EXPECT_LE(l, 128);
    }
  }
}

TEST(RequestGen, MeanTracksAlpha) {
  Rng rng(202);
  for (double alpha : {0.2, 0.4, 0.6, 0.8}) {
    const auto lens = gen_lengths(20000, 256, alpha, rng);
    double mean = 0;
    for (int l : lens) mean += l;
    mean /= static_cast<double>(lens.size());
    EXPECT_NEAR(mean / 256.0, alpha, 0.03) << "alpha=" << alpha;
  }
}

TEST(RequestGen, AlphaOneIsAllMax) {
  Rng rng(203);
  const auto lens = gen_lengths(100, 64, 1.0, rng);
  for (int l : lens) EXPECT_EQ(l, 64);
}

TEST(RequestGen, ArrivalsAreMonotone) {
  Rng rng(204);
  const auto t = gen_arrivals(500, 100.0, rng);
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_GT(t[i], t[i - 1]);
  }
  // Mean inter-arrival ~ 1/rate.
  EXPECT_NEAR(t.back() / 500.0, 0.01, 0.004);
}

TEST(Batching, GroupsRespectSizeAndOrder) {
  const std::vector<int> lens{5, 30, 12, 64, 8, 40, 22, 3};
  const auto groups = group_by_length(lens, 3);
  EXPECT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].indices.size(), 3u);
  EXPECT_EQ(groups[2].indices.size(), 2u);
  // First group holds the longest requests; its pad target is the global max.
  EXPECT_EQ(groups[0].max_len, 64);
  // Groups are sorted descending: later groups have smaller pad targets.
  EXPECT_GE(groups[0].max_len, groups[1].max_len);
  EXPECT_GE(groups[1].max_len, groups[2].max_len);
  // Every index appears exactly once.
  std::vector<int> all;
  for (const auto& g : groups) {
    all.insert(all.end(), g.indices.begin(), g.indices.end());
  }
  std::sort(all.begin(), all.end());
  for (int i = 0; i < 8; ++i) EXPECT_EQ(all[static_cast<std::size_t>(i)], i);
}

TEST(Batching, GroupSizeZeroMeansPadToMax) {
  const std::vector<int> lens{5, 30, 12};
  const auto groups = group_by_length(lens, 0);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].max_len, 30);
  EXPECT_EQ(padded_tokens(groups, lens), 3 * 30);
}

TEST(Batching, GroupingReducesPaddedTokens) {
  Rng rng(205);
  const auto lens = gen_lengths(64, 512, 0.5, rng);
  const auto one = group_by_length(lens, 0);
  const auto grouped = group_by_length(lens, 8);
  long long valid = 0;
  for (int l : lens) valid += l;
  EXPECT_LT(padded_tokens(grouped, lens), padded_tokens(one, lens));
  // But grouping never reaches the packed (zero-waste) level for non-uniform
  // lengths.
  EXPECT_GT(padded_tokens(grouped, lens), valid);
}

TEST(Batching, SingleRequestGroup) {
  const std::vector<int> lens{17};
  const auto groups = group_by_length(lens, 4);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].max_len, 17);
  EXPECT_EQ(padded_tokens(groups, lens), 17);
}

TEST(Batching, EmptyLengthsYieldNoGroups) {
  const std::vector<int> lens;
  EXPECT_TRUE(group_by_length(lens, 4).empty());
  EXPECT_TRUE(group_by_length(lens, 0).empty());
  EXPECT_EQ(padded_tokens(group_by_length(lens, 4), lens), 0);
}

TEST(Batching, NonPositiveGroupSizeMeansOneGroup) {
  const std::vector<int> lens{9, 2, 5, 7};
  for (int gs : {0, -1, -100}) {
    const auto groups = group_by_length(lens, gs);
    ASSERT_EQ(groups.size(), 1u) << "group_size=" << gs;
    EXPECT_EQ(groups[0].indices.size(), lens.size());
    EXPECT_EQ(groups[0].max_len, 9);
  }
}

TEST(Batching, AllEqualLengthsGroupWithoutPadding) {
  const std::vector<int> lens(8, 7);
  const auto groups = group_by_length(lens, 3);
  ASSERT_EQ(groups.size(), 3u);  // 3 + 3 + 2
  long long valid = 0;
  for (int l : lens) valid += l;
  for (const auto& g : groups) EXPECT_EQ(g.max_len, 7);
  // Uniform lengths are the one case where grouping reaches zero waste.
  EXPECT_EQ(padded_tokens(groups, lens), valid);
}

TEST(RequestGen, ArrivalsMeanInterArrivalMatchesRate) {
  Rng rng(206);
  for (double rate : {50.0, 400.0}) {
    const int n = 4000;
    const auto t = gen_arrivals(n, rate, rng);
    // Mean inter-arrival ~ 1/rate (t.back() is the sum of n exponentials).
    EXPECT_NEAR(t.back() / n, 1.0 / rate, 0.1 / rate) << "rate=" << rate;
    // Exponential inter-arrivals: coefficient of variation ~ 1.
    std::vector<double> gaps;
    gaps.push_back(t.front());
    for (std::size_t i = 1; i < t.size(); ++i) gaps.push_back(t[i] - t[i - 1]);
    const double mean = t.back() / n;
    double var = 0;
    for (double g : gaps) var += (g - mean) * (g - mean);
    var /= static_cast<double>(gaps.size());
    EXPECT_NEAR(std::sqrt(var) / mean, 1.0, 0.15) << "rate=" << rate;
  }
}

TEST(Batching, EqualLengthTiesKeepSubmissionOrder) {
  // Regression: group_by_length used std::sort with a length-only
  // comparator, leaving equal-length requests in implementation-defined
  // order — micro-batch composition was not reproducible across platforms.
  // stable_sort ties break by ascending index.
  const std::vector<int> lens{8, 16, 8, 4, 16, 8, 4, 16};
  const auto groups = group_by_length(lens, 3);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].indices, (std::vector<int>{1, 4, 7}));  // the 16s
  EXPECT_EQ(groups[1].indices, (std::vector<int>{0, 2, 5}));  // the 8s
  EXPECT_EQ(groups[2].indices, (std::vector<int>{3, 6}));     // the 4s
}

TEST(Batching, GroupingIsDeterministicAcrossCalls) {
  Rng rng(207);
  auto lens = gen_lengths(128, 64, 0.6, rng);
  // Force many ties so the tie-break actually matters.
  for (std::size_t i = 0; i < lens.size(); ++i) {
    lens[i] = 1 + lens[i] % 7;
  }
  const auto first = group_by_length(lens, 5);
  for (int repeat = 0; repeat < 4; ++repeat) {
    const auto again = group_by_length(lens, 5);
    ASSERT_EQ(again.size(), first.size());
    for (std::size_t g = 0; g < first.size(); ++g) {
      EXPECT_EQ(again[g].indices, first[g].indices) << "group " << g;
      EXPECT_EQ(again[g].max_len, first[g].max_len);
    }
  }
  // And the scheduler plan built on top inherits the determinism.
  const auto plan = plan_batch(BatchPolicy::kSortGroup, lens, 5);
  const auto plan2 = plan_batch(BatchPolicy::kSortGroup, lens, 5);
  ASSERT_EQ(plan.micro.size(), plan2.micro.size());
  for (std::size_t m = 0; m < plan.micro.size(); ++m) {
    EXPECT_EQ(plan.micro[m].indices, plan2.micro[m].indices);
  }
}

TEST(Scheduler, PadToMaxPlanIsOneGridShapedMicroBatch) {
  const std::vector<int> lens{12, 3, 8, 16, 5};
  const auto plan = plan_batch(BatchPolicy::kPadToMax, lens, 0);
  ASSERT_EQ(plan.micro.size(), 1u);
  EXPECT_FALSE(plan.micro[0].packed);
  EXPECT_EQ(plan.micro[0].max_len, 16);
  EXPECT_EQ(plan.valid_tokens, 44);
  EXPECT_EQ(plan.processed_tokens, 5 * 16);
  EXPECT_EQ(plan.padding_tokens(), 5 * 16 - 44);
}

TEST(Scheduler, PackedPlanHasZeroPaddingTokens) {
  const std::vector<int> lens{12, 3, 8, 16, 5};
  const auto plan = plan_batch(BatchPolicy::kPacked, lens, 0);
  ASSERT_EQ(plan.micro.size(), 1u);
  EXPECT_TRUE(plan.micro[0].packed);
  EXPECT_EQ(plan.processed_tokens, plan.valid_tokens);
  EXPECT_EQ(plan.padding_tokens(), 0);
}

TEST(Scheduler, SortGroupPlanMatchesGrouping) {
  const std::vector<int> lens{12, 3, 8, 16, 5};
  const auto plan = plan_batch(BatchPolicy::kSortGroup, lens, 2);
  ASSERT_EQ(plan.micro.size(), 3u);  // 2 + 2 + 1, sorted descending
  EXPECT_EQ(plan.micro[0].max_len, 16);
  EXPECT_GE(plan.micro[0].max_len, plan.micro[1].max_len);
  EXPECT_GE(plan.micro[1].max_len, plan.micro[2].max_len);
  EXPECT_EQ(plan.padding_tokens(),
            padded_tokens(group_by_length(lens, 2), lens) - 44);
  // Every request appears exactly once across micro-batches.
  std::vector<int> all;
  for (const auto& mb : plan.micro) {
    all.insert(all.end(), mb.indices.begin(), mb.indices.end());
  }
  std::sort(all.begin(), all.end());
  for (int i = 0; i < 5; ++i) EXPECT_EQ(all[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, EmptyLengthsYieldEmptyPlan) {
  for (auto policy : {BatchPolicy::kPadToMax, BatchPolicy::kSortGroup,
                      BatchPolicy::kPacked}) {
    const auto plan = plan_batch(policy, {}, 4);
    EXPECT_TRUE(plan.micro.empty());
    EXPECT_EQ(plan.valid_tokens, 0);
    EXPECT_EQ(plan.processed_tokens, 0);
  }
}

}  // namespace
}  // namespace bt::serving
