// Add-bias / add-bias+GELU elementwise kernels.
#include <gtest/gtest.h>

#include "common/numeric.h"
#include "common/rng.h"
#include "kernels/activation.h"
#include "parallel/device.h"
#include "tensor/tensor.h"

namespace bt::kernels {
namespace {

par::Device& dev() {
  static par::Device d(2);
  return d;
}

TEST(AddBias, AddsPerColumn) {
  const int rows = 9;
  const int cols = 33;
  Rng rng(91);
  auto x = Tensor<fp16_t>::random_normal({rows, cols}, rng);
  auto bias = Tensor<fp16_t>::random_normal({cols}, rng);
  auto orig = x.clone();
  add_bias(dev(), x.data(), bias.data(), rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      EXPECT_NEAR(load_f32(x(i, j)),
                  load_f32(orig(i, j)) + load_f32(bias(j)), 2e-3);
    }
  }
}

TEST(AddBiasGelu, MatchesScalarReference) {
  const int rows = 13;
  const int cols = 65;
  Rng rng(92);
  auto x = Tensor<fp16_t>::random_normal({rows, cols}, rng, 2.0f);
  auto bias = Tensor<fp16_t>::random_normal({cols}, rng);
  auto orig = x.clone();
  add_bias_gelu(dev(), x.data(), bias.data(), rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      const float want =
          gelu_tanh(load_f32(orig(i, j)) + load_f32(bias(j)));
      EXPECT_NEAR(load_f32(x(i, j)), want, 5e-3);
    }
  }
}

TEST(AddBiasGelu, Fp32Variant) {
  const int rows = 7;
  const int cols = 129;
  Rng rng(93);
  auto x = Tensor<float>::random_normal({rows, cols}, rng);
  auto bias = Tensor<float>::random_normal({cols}, rng);
  auto orig = x.clone();
  add_bias_gelu(dev(), x.data(), bias.data(), rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      EXPECT_FLOAT_EQ(x(i, j), gelu_tanh(orig(i, j) + bias(j)));
    }
  }
}

TEST(AddBiasGelu, NegativeSaturationToZero) {
  const int cols = 8;
  auto x = Tensor<fp16_t>({1, cols});
  x.fill(fp16_t(-20.0f));
  auto bias = Tensor<fp16_t>::zeros({cols});
  add_bias_gelu(dev(), x.data(), bias.data(), 1, cols);
  for (int j = 0; j < cols; ++j) {
    EXPECT_NEAR(load_f32(x(0, j)), 0.0f, 1e-4);
  }
}

TEST(AddBias, SingleRowSingleCol) {
  auto x = Tensor<fp16_t>({1, 1});
  x(0, 0) = fp16_t(1.5f);
  auto bias = Tensor<fp16_t>({1});
  bias(0) = fp16_t(0.25f);
  add_bias(dev(), x.data(), bias.data(), 1, 1);
  EXPECT_FLOAT_EQ(load_f32(x(0, 0)), 1.75f);
}

}  // namespace
}  // namespace bt::kernels
