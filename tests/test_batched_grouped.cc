// Batched GEMM == loop of single GEMMs; grouped GEMM == loop of single GEMMs
// over arbitrary shape sets, for any scheduler prefetch width.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "common/rng.h"
#include "gemm/batched.h"
#include "gemm/gemm.h"
#include "gemm/grouped.h"
#include "parallel/device.h"
#include "tensor/tensor.h"

namespace bt::gemm {
namespace {

par::Device& dev() {
  static par::Device d(2);
  return d;
}

TEST(BatchedGemm, MatchesPerBatchGemm) {
  const int batch = 6;
  const int m = 40;
  const int n = 50;
  const int k = 64;
  Rng rng(31);
  auto a = Tensor<fp16_t>::random_normal({batch, m, k}, rng);
  auto b = Tensor<fp16_t>::random_normal({batch, k, n}, rng);
  auto c = Tensor<fp16_t>::zeros({batch, m, n});
  batched_gemm<fp16_t, fp16_t, fp16_t>(
      dev(), Trans::N, Trans::N, batch, m, n, k, 1.0f, a.data(), k,
      static_cast<std::int64_t>(m) * k, b.data(), n,
      static_cast<std::int64_t>(k) * n, 0.0f, c.data(), n,
      static_cast<std::int64_t>(m) * n);

  for (int bi = 0; bi < batch; ++bi) {
    auto want = Tensor<fp16_t>::zeros({m, n});
    gemm_f16(dev(), Trans::N, Trans::N, m, n, k, 1.0f,
             a.data() + static_cast<std::int64_t>(bi) * m * k, k,
             b.data() + static_cast<std::int64_t>(bi) * k * n, n, 0.0f,
             want.data(), n);
    for (std::int64_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(c.data()[static_cast<std::int64_t>(bi) * m * n + i].bits(),
                want.data()[i].bits());
    }
  }
}

TEST(BatchedGemm, SharedOperandViaZeroStride) {
  // Batch stride 0 on B: every batch multiplies the same matrix — the
  // pattern DeBERTa uses for the shared relative-embedding projections.
  const int batch = 4;
  const int m = 30;
  const int n = 20;
  const int k = 32;
  Rng rng(32);
  auto a = Tensor<fp16_t>::random_normal({batch, m, k}, rng);
  auto b = Tensor<fp16_t>::random_normal({k, n}, rng);
  auto c = Tensor<fp16_t>::zeros({batch, m, n});
  batched_gemm<fp16_t, fp16_t, fp16_t>(
      dev(), Trans::N, Trans::N, batch, m, n, k, 1.0f, a.data(), k,
      static_cast<std::int64_t>(m) * k, b.data(), n, 0, 0.0f, c.data(), n,
      static_cast<std::int64_t>(m) * n);
  for (int bi = 0; bi < batch; ++bi) {
    auto want = Tensor<fp16_t>::zeros({m, n});
    gemm_f16(dev(), Trans::N, Trans::N, m, n, k, 1.0f,
             a.data() + static_cast<std::int64_t>(bi) * m * k, k, b.data(), n,
             0.0f, want.data(), n);
    for (std::int64_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(c.data()[static_cast<std::int64_t>(bi) * m * n + i].bits(),
                want.data()[i].bits());
    }
  }
}

struct GroupedCase {
  std::vector<std::array<std::int64_t, 3>> shapes;  // (m, n, k) per problem
};

void run_grouped_case(const GroupedCase& gc, std::int64_t prefetch) {
  Rng rng(41);
  std::vector<Tensor<fp16_t>> as;
  std::vector<Tensor<fp16_t>> bs;
  std::vector<Tensor<fp16_t>> cs;
  std::vector<GroupedProblem<fp16_t, fp16_t, fp16_t>> problems;
  for (const auto& [m, n, k] : gc.shapes) {
    as.push_back(Tensor<fp16_t>::random_normal({m, k}, rng));
    bs.push_back(Tensor<fp16_t>::random_normal({k, n}, rng));
    cs.push_back(Tensor<fp16_t>::zeros({m, n}));
  }
  for (std::size_t i = 0; i < gc.shapes.size(); ++i) {
    const auto& [m, n, k] = gc.shapes[i];
    problems.push_back({m, n, k, as[i].data(), k, bs[i].data(), n,
                        cs[i].data(), n});
  }
  grouped_gemm<fp16_t, fp16_t, fp16_t>(
      dev(), Trans::N, Trans::N,
      std::span<const GroupedProblem<fp16_t, fp16_t, fp16_t>>(problems), 1.0f,
      0.0f, {}, {}, prefetch);

  for (std::size_t i = 0; i < gc.shapes.size(); ++i) {
    const auto& [m, n, k] = gc.shapes[i];
    auto want = Tensor<fp16_t>::zeros({m, n});
    gemm_f16(dev(), Trans::N, Trans::N, m, n, k, 1.0f, as[i].data(), k,
             bs[i].data(), n, 0.0f, want.data(), n);
    for (std::int64_t e = 0; e < want.size(); ++e) {
      ASSERT_EQ(cs[i].data()[e].bits(), want.data()[e].bits())
          << "problem " << i << " elem " << e << " prefetch " << prefetch;
    }
  }
}

TEST(GroupedGemm, VariableShapesPrefetch32) {
  run_grouped_case({{{100, 100, 64}, {37, 211, 64}, {1, 1, 64}, {64, 64, 64}}},
                   32);
}

TEST(GroupedGemm, VariableShapesPrefetch1) {
  run_grouped_case({{{100, 100, 64}, {37, 211, 64}, {1, 1, 64}, {64, 64, 64}}},
                   1);
}

TEST(GroupedGemm, PrefetchWidthsAgree) {
  // The scheduler prefetch width is a pure performance knob: results must be
  // identical for any value.
  GroupedCase gc{{{70, 70, 32}, {130, 20, 32}, {5, 200, 32}}};
  run_grouped_case(gc, 1);
  run_grouped_case(gc, 2);
  run_grouped_case(gc, 8);
  run_grouped_case(gc, 32);
  run_grouped_case(gc, 1000);
}

TEST(GroupedGemm, SingleProblemEqualsPlainGemm) {
  run_grouped_case({{{129, 65, 128}}}, 32);
}

TEST(GroupedGemm, ManySmallProblems) {
  GroupedCase gc;
  Rng rng(55);
  for (int i = 0; i < 40; ++i) {
    gc.shapes.push_back({rng.uniform_int(1, 70), rng.uniform_int(1, 70), 64});
  }
  run_grouped_case(gc, 32);
}

TEST(GroupedGemm, EmptyProblemListIsNoOp) {
  std::vector<GroupedProblem<fp16_t, fp16_t, fp16_t>> empty;
  grouped_gemm<fp16_t, fp16_t, fp16_t>(
      dev(), Trans::N, Trans::N,
      std::span<const GroupedProblem<fp16_t, fp16_t, fp16_t>>(empty), 1.0f,
      0.0f);
}

TEST(GroupedGemm, MhaShapedProblems) {
  // (len x len x d) then (len x d x len): the exact shapes fused-long MHA
  // submits, with strided views (ld = hidden) into packed tensors.
  const int heads = 3;
  const int d = 32;
  const int hidden = heads * d;
  const std::vector<int> lens{50, 128, 7};
  std::int64_t valid = 0;
  for (int l : lens) valid += l;
  Rng rng(66);
  auto q = Tensor<fp16_t>::random_normal({valid, hidden}, rng);
  auto k = Tensor<fp16_t>::random_normal({valid, hidden}, rng);

  std::vector<Tensor<fp16_t>> scores;
  std::vector<GroupedProblem<fp16_t, fp16_t, fp16_t>> problems;
  std::int64_t row0 = 0;
  for (int l : lens) {
    for (int h = 0; h < heads; ++h) {
      scores.push_back(Tensor<fp16_t>::zeros({l, l}));
    }
    row0 += l;
  }
  row0 = 0;
  std::size_t si = 0;
  for (int l : lens) {
    for (int h = 0; h < heads; ++h, ++si) {
      problems.push_back({l, l, d, q.data() + row0 * hidden + h * d, hidden,
                          k.data() + row0 * hidden + h * d, hidden,
                          scores[si].data(), l});
    }
    row0 += l;
  }
  grouped_gemm<fp16_t, fp16_t, fp16_t>(
      dev(), Trans::N, Trans::T,
      std::span<const GroupedProblem<fp16_t, fp16_t, fp16_t>>(problems),
      0.125f, 0.0f);

  // Validate one unit against the reference.
  row0 = 0;
  si = 0;
  for (int l : lens) {
    for (int h = 0; h < heads; ++h, ++si) {
      std::vector<double> want(static_cast<std::size_t>(l) * l);
      gemm_reference(Trans::N, Trans::T, l, l, d, 0.125,
                     q.data() + row0 * hidden + h * d, hidden,
                     k.data() + row0 * hidden + h * d, hidden, want.data(), l);
      for (std::int64_t e = 0; e < static_cast<std::int64_t>(l) * l; ++e) {
        ASSERT_NEAR(load_f32(scores[si].data()[e]),
                    want[static_cast<std::size_t>(e)], 2e-2);
      }
    }
    row0 += l;
  }
}

}  // namespace
}  // namespace bt::gemm
