// Engine facade: bitwise equivalence with hand-wired BertModel::forward for
// every batching policy, padded-token accounting, option validation, and
// queue-edge behaviour.
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/model.h"
#include "parallel/device.h"
#include "serving/engine.h"
#include "serving/scheduler.h"
#include "tensor/tensor.h"

namespace bt::serving {
namespace {

par::Device& dev() {
  static par::Device d(2);
  return d;
}

core::BertConfig tiny_config() {
  core::BertConfig cfg;
  cfg.layers = 2;
  cfg.heads = 2;
  cfg.head_size = 16;
  return cfg;
}

std::shared_ptr<const core::BertModel> shared_model() {
  static std::shared_ptr<const core::BertModel> model = [] {
    Rng rng(4242);
    return std::make_shared<const core::BertModel>(
        core::BertModel::random(tiny_config(), rng));
  }();
  return model;
}

const std::vector<int> kLens{12, 3, 8, 16, 5};

// Deterministic per-request hidden states; a fresh Rng per call so the
// engine and the hand-wired reference see identical inputs.
std::vector<Tensor<fp16_t>> make_requests(std::span<const int> lens,
                                          int hidden) {
  Rng rng(77);
  std::vector<Tensor<fp16_t>> reqs;
  for (int len : lens) {
    reqs.push_back(Tensor<fp16_t>::random_normal({len, hidden}, rng));
  }
  return reqs;
}

// Hand-wired kernel-level execution of one micro-batch: zero-padded gather,
// offset construction, forward — exactly what every call site did before the
// engine existed.
Tensor<fp16_t> direct_forward(const core::BertModel& model,
                              const std::vector<Tensor<fp16_t>>& reqs,
                              std::span<const int> indices, int max_len,
                              const core::OptFlags& flags) {
  const std::int64_t h = model.config().hidden();
  const std::int64_t rows = static_cast<std::int64_t>(indices.size()) * max_len;
  auto in = Tensor<fp16_t>::zeros({rows, h});
  std::vector<int> lens;
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const auto& r = reqs[static_cast<std::size_t>(indices[i])];
    lens.push_back(static_cast<int>(r.dim(0)));
    std::copy(r.data(), r.data() + r.size(),
              in.data() + static_cast<std::int64_t>(i) * max_len * h);
  }
  const auto off = core::build_seq_offsets(dev(), lens, max_len);
  auto out = Tensor<fp16_t>::zeros({rows, h});
  core::Workspace ws;
  model.forward(dev(), in.data(), out.data(), off, flags, ws);
  return out;
}

// Bitwise comparison of a valid-rows response against the padded direct
// output at row block `block`.
void expect_bits_equal(const Response& got, const Tensor<fp16_t>& padded_out,
                       int block, int max_len, std::int64_t h) {
  ASSERT_EQ(got.output.rank(), 2);
  const std::int64_t len = got.output.dim(0);
  for (std::int64_t s = 0; s < len; ++s) {
    for (std::int64_t j = 0; j < h; ++j) {
      ASSERT_EQ(got.output(s, j).bits(),
                padded_out(static_cast<std::int64_t>(block) * max_len + s, j)
                    .bits())
          << "row " << s << " col " << j;
    }
  }
}

EngineOptions options_for(BatchPolicy policy, const core::OptFlags& flags,
                          int group_size = 2) {
  EngineOptions opts;
  opts.policy = policy;
  opts.flags = flags;
  opts.group_size = group_size;
  opts.max_batch_requests = static_cast<int>(kLens.size());
  opts.threads = 2;
  return opts;
}

TEST(Engine, PadToMaxBitMatchesDirectForward) {
  auto model = shared_model();
  const auto flags = core::OptFlags::bias_gelu_fused();
  Engine engine(model, options_for(BatchPolicy::kPadToMax, flags));
  const std::int64_t h = engine.hidden();

  auto reqs = make_requests(kLens, static_cast<int>(h));
  const auto expect_reqs = make_requests(kLens, static_cast<int>(h));
  const std::vector<int> order{0, 1, 2, 3, 4};
  const int max_len = 16;
  const auto want = direct_forward(*model, expect_reqs, order, max_len, flags);

  for (auto& r : reqs) engine.submit(std::move(r));
  const auto responses = engine.drain();
  ASSERT_EQ(responses.size(), kLens.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(responses[i].id, static_cast<RequestId>(i));
    expect_bits_equal(responses[i], want, static_cast<int>(i), max_len, h);
  }
}

TEST(Engine, PackedBitMatchesDirectForward) {
  auto model = shared_model();
  const auto flags = core::OptFlags::byte_transformer();
  Engine engine(model, options_for(BatchPolicy::kPacked, flags));
  const std::int64_t h = engine.hidden();

  auto reqs = make_requests(kLens, static_cast<int>(h));
  const auto expect_reqs = make_requests(kLens, static_cast<int>(h));
  const std::vector<int> order{0, 1, 2, 3, 4};
  const int max_len = 16;
  const auto want = direct_forward(*model, expect_reqs, order, max_len, flags);

  for (auto& r : reqs) engine.submit(std::move(r));
  const auto responses = engine.drain();
  ASSERT_EQ(responses.size(), kLens.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    expect_bits_equal(responses[i], want, static_cast<int>(i), max_len, h);
  }
}

TEST(Engine, SortGroupBitMatchesDirectForward) {
  auto model = shared_model();
  const auto flags = core::OptFlags::layernorm_fused();
  const int group_size = 2;
  Engine engine(model, options_for(BatchPolicy::kSortGroup, flags, group_size));
  const std::int64_t h = engine.hidden();

  auto reqs = make_requests(kLens, static_cast<int>(h));
  const auto expect_reqs = make_requests(kLens, static_cast<int>(h));
  for (auto& r : reqs) engine.submit(std::move(r));
  const auto responses = engine.drain();
  ASSERT_EQ(responses.size(), kLens.size());

  // Replicate the scheduler's plan and run each group by hand.
  const auto plan = plan_batch(BatchPolicy::kSortGroup, kLens, group_size);
  for (const MicroBatch& mb : plan.micro) {
    const auto want =
        direct_forward(*model, expect_reqs, mb.indices, mb.max_len, flags);
    for (std::size_t i = 0; i < mb.indices.size(); ++i) {
      const auto& r = responses[static_cast<std::size_t>(mb.indices[i])];
      expect_bits_equal(r, want, static_cast<int>(i), mb.max_len, h);
    }
  }
}

TEST(Engine, PaddedTokenAccountingPerPolicy) {
  auto model = shared_model();
  const std::int64_t h = shared_model()->config().hidden();
  long long valid = 0;
  for (int l : kLens) valid += l;
  const long long grid = static_cast<long long>(kLens.size()) * 16;

  Engine packed(model, options_for(BatchPolicy::kPacked,
                                   core::OptFlags::byte_transformer()));
  Engine pad(model, options_for(BatchPolicy::kPadToMax,
                                core::OptFlags::bias_gelu_fused()));
  Engine grouped(model, options_for(BatchPolicy::kSortGroup,
                                    core::OptFlags::layernorm_fused(), 2));
  for (Engine* e : {&packed, &pad, &grouped}) {
    for (auto& r : make_requests(kLens, static_cast<int>(h))) {
      e->submit(std::move(r));
    }
    e->drain();
    EXPECT_EQ(e->stats().valid_tokens, valid);
  }

  EXPECT_EQ(packed.stats().padding_tokens(), 0);
  EXPECT_EQ(pad.stats().padding_tokens(), grid - valid);
  // Grouping reduces but does not eliminate padding on non-uniform lengths.
  EXPECT_GT(grouped.stats().padding_tokens(), 0);
  EXPECT_LT(grouped.stats().padding_tokens(), pad.stats().padding_tokens());
}

TEST(Engine, EmptyQueueIsANoOp) {
  Engine engine(shared_model(),
                options_for(BatchPolicy::kPacked,
                            core::OptFlags::byte_transformer()));
  EXPECT_TRUE(engine.run_batch().empty());
  EXPECT_TRUE(engine.drain().empty());
  EXPECT_EQ(engine.pending(), 0u);
  EXPECT_EQ(engine.stats().batches, 0);
  EXPECT_EQ(engine.stats().requests, 0);
}

TEST(Engine, SingleRequestRoundTrips) {
  Engine engine(shared_model(),
                options_for(BatchPolicy::kPacked,
                            core::OptFlags::byte_transformer()));
  const std::int64_t h = engine.hidden();
  Rng rng(9);
  const RequestId id =
      engine.submit(Tensor<fp16_t>::random_normal({7, h}, rng));
  EXPECT_EQ(engine.pending(), 1u);
  const auto responses = engine.drain();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].id, id);
  EXPECT_EQ(responses[0].output.dim(0), 7);
  EXPECT_EQ(responses[0].output.dim(1), h);
  EXPECT_EQ(engine.pending(), 0u);
  EXPECT_EQ(engine.stats().padding_tokens(), 0);
  EXPECT_GE(responses[0].compute_seconds, 0.0);
  EXPECT_GE(responses[0].queue_seconds, 0.0);
}

TEST(Engine, RoundsRespectRequestCap) {
  auto opts = options_for(BatchPolicy::kPacked,
                          core::OptFlags::byte_transformer());
  opts.max_batch_requests = 2;
  Engine engine(shared_model(), opts);
  const std::int64_t h = engine.hidden();
  for (auto& r : make_requests(kLens, static_cast<int>(h))) {
    engine.submit(std::move(r));
  }
  const auto responses = engine.drain();
  ASSERT_EQ(responses.size(), kLens.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(responses[i].id, static_cast<RequestId>(i));
    EXPECT_EQ(responses[i].output.dim(0), kLens[i]);
  }
  EXPECT_EQ(engine.stats().batches, 3);  // 2 + 2 + 1
}

TEST(Engine, TokenCapAlwaysAdmitsAtLeastOneRequest) {
  auto opts = options_for(BatchPolicy::kPacked,
                          core::OptFlags::byte_transformer());
  opts.max_batch_tokens = 10;  // smaller than the 16-token request
  Engine engine(shared_model(), opts);
  const std::int64_t h = engine.hidden();
  Rng rng(10);
  engine.submit(Tensor<fp16_t>::random_normal({16, h}, rng));
  engine.submit(Tensor<fp16_t>::random_normal({4, h}, rng));
  const auto first = engine.run_batch();
  ASSERT_EQ(first.size(), 1u);  // the oversized request runs alone
  EXPECT_EQ(first[0].output.dim(0), 16);
  EXPECT_EQ(engine.pending(), 1u);
}

TEST(Engine, RejectsInconsistentOptions) {
  auto model = shared_model();

  core::OptFlags bad = core::OptFlags::byte_transformer();
  bad.zero_padding = false;  // fused MHA needs the packed pipeline
  EXPECT_FALSE(bad.validate().empty());
  EXPECT_THROW(Engine(model, options_for(BatchPolicy::kPadToMax, bad)),
               std::invalid_argument);

  // Packed policy claims zero waste, so it must run the packed pipeline.
  EXPECT_THROW(Engine(model, options_for(BatchPolicy::kPacked,
                                         core::OptFlags::bias_gelu_fused())),
               std::invalid_argument);

  EXPECT_THROW(Engine(model, options_for(BatchPolicy::kSortGroup,
                                         core::OptFlags::layernorm_fused(),
                                         /*group_size=*/0)),
               std::invalid_argument);

  auto opts = options_for(BatchPolicy::kPacked,
                          core::OptFlags::byte_transformer());
  opts.max_batch_requests = 0;
  EXPECT_THROW(Engine(model, opts), std::invalid_argument);
}

TEST(Engine, CallerSuppliedIdsStayDisjointFromAutoIds) {
  Engine engine(shared_model(),
                options_for(BatchPolicy::kPacked,
                            core::OptFlags::byte_transformer()));
  const std::int64_t h = engine.hidden();
  Rng rng(11);
  EXPECT_EQ(engine.submit(Request{5, Tensor<fp16_t>::random_normal({3, h}, rng)}),
            5);
  // Auto-assignment must skip past the caller's id, not reuse 0..5.
  EXPECT_EQ(engine.submit(Tensor<fp16_t>::random_normal({3, h}, rng)), 6);
  const auto responses = engine.drain();
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_NE(responses[0].id, responses[1].id);
}

TEST(Engine, SubmitRejectsDuplicateCallerIds) {
  Engine engine(shared_model(),
                options_for(BatchPolicy::kPacked,
                            core::OptFlags::byte_transformer()));
  const std::int64_t h = engine.hidden();
  Rng rng(12);

  // Collision with a still-queued caller-supplied id.
  engine.submit(Request{3, Tensor<fp16_t>::random_normal({2, h}, rng)});
  EXPECT_THROW(
      engine.submit(Request{3, Tensor<fp16_t>::random_normal({2, h}, rng)}),
      std::invalid_argument);

  // Collision with an auto-assigned id that is still queued.
  const RequestId auto_id =
      engine.submit(Tensor<fp16_t>::random_normal({2, h}, rng));
  EXPECT_THROW(engine.submit(Request{auto_id,
                                     Tensor<fp16_t>::random_normal({2, h}, rng)}),
               std::invalid_argument);

  // Ids stay burned after the response was issued: resubmitting a completed
  // id would produce a second Response with the same id.
  engine.drain();
  EXPECT_THROW(
      engine.submit(Request{3, Tensor<fp16_t>::random_normal({2, h}, rng)}),
      std::invalid_argument);
  EXPECT_THROW(engine.submit(Request{auto_id,
                                     Tensor<fp16_t>::random_normal({2, h}, rng)}),
               std::invalid_argument);

  // The failed submissions must not have enqueued anything, and fresh ids
  // still work.
  EXPECT_EQ(engine.pending(), 0u);
  const RequestId fresh =
      engine.submit(Request{100, Tensor<fp16_t>::random_normal({2, h}, rng)});
  EXPECT_EQ(fresh, 100);
  const auto responses = engine.drain();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].id, 100);

  // Ids the jump to 100 skipped over were never issued: filling one of the
  // gaps is legal exactly once, and auto-assignment continues past the
  // watermark.
  EXPECT_EQ(engine.submit(Request{50, Tensor<fp16_t>::random_normal({2, h}, rng)}),
            50);
  EXPECT_THROW(
      engine.submit(Request{50, Tensor<fp16_t>::random_normal({2, h}, rng)}),
      std::invalid_argument);
  EXPECT_EQ(engine.submit(Tensor<fp16_t>::random_normal({2, h}, rng)), 101);
  engine.drain();
}

TEST(Engine, DiscardPendingDropsQueueAndBurnsIds) {
  Engine engine(shared_model(),
                options_for(BatchPolicy::kPacked,
                            core::OptFlags::byte_transformer()));
  const std::int64_t h = engine.hidden();
  Rng rng(13);
  const RequestId a = engine.submit(Tensor<fp16_t>::random_normal({3, h}, rng));
  const RequestId b = engine.submit(Tensor<fp16_t>::random_normal({5, h}, rng));
  EXPECT_EQ(engine.discard_pending(), 2u);
  EXPECT_EQ(engine.pending(), 0u);
  EXPECT_TRUE(engine.drain().empty());
  // Discarded ids stay burned; the engine keeps working for new requests.
  EXPECT_THROW(
      engine.submit(Request{a, Tensor<fp16_t>::random_normal({2, h}, rng)}),
      std::invalid_argument);
  const RequestId c = engine.submit(Tensor<fp16_t>::random_normal({2, h}, rng));
  EXPECT_GT(c, b);
  const auto responses = engine.drain();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].id, c);
}

TEST(RequestIdTracker, WatermarkAndGapSemantics) {
  RequestIdTracker ids;
  EXPECT_FALSE(ids.issued(0));
  EXPECT_EQ(ids.next(), 0);

  ids.mark(0);
  ids.mark(1);
  EXPECT_TRUE(ids.issued(0));
  EXPECT_TRUE(ids.issued(1));
  EXPECT_EQ(ids.next(), 2);

  ids.mark(10);  // gap [2, 10)
  EXPECT_EQ(ids.next(), 11);
  EXPECT_TRUE(ids.issued(10));
  for (RequestId g = 2; g < 10; ++g) EXPECT_FALSE(ids.issued(g)) << g;

  ids.mark(5);  // splits the gap into [2, 5) and [6, 10)
  EXPECT_TRUE(ids.issued(5));
  EXPECT_FALSE(ids.issued(4));
  EXPECT_FALSE(ids.issued(6));

  ids.mark(2);  // shrinks [2, 5) to [3, 5)
  ids.mark(4);  // shrinks [3, 5) to [3, 4)
  EXPECT_TRUE(ids.issued(2));
  EXPECT_FALSE(ids.issued(3));
  EXPECT_TRUE(ids.issued(4));

  ids.mark(3);  // gap [3, 4) fully consumed
  for (RequestId g = 0; g < 6; ++g) EXPECT_TRUE(ids.issued(g)) << g;
  EXPECT_FALSE(ids.issued(11));
}

TEST(RequestIdTracker, RejectsWatermarkOverflow) {
  constexpr RequestId kMax = std::numeric_limits<RequestId>::max();
  RequestIdTracker ids;
  EXPECT_THROW(ids.reserve(kMax), std::invalid_argument);
  // A caller id just below the edge is fine, but the next auto id would
  // land on kMax and overflow the watermark.
  EXPECT_EQ(ids.reserve(kMax - 1), kMax - 1);
  EXPECT_THROW(ids.reserve(-1), std::invalid_argument);
}

TEST(Engine, SubmitRejectsMalformedHidden) {
  Engine engine(shared_model(),
                options_for(BatchPolicy::kPacked,
                            core::OptFlags::byte_transformer()));
  EXPECT_THROW(engine.submit(Tensor<fp16_t>::zeros({4})),
               std::invalid_argument);  // rank 1
  EXPECT_THROW(engine.submit(Tensor<fp16_t>::zeros({0, engine.hidden()})),
               std::invalid_argument);  // zero-length
  EXPECT_THROW(engine.submit(Tensor<fp16_t>::zeros({4, engine.hidden() + 1})),
               std::invalid_argument);  // wrong hidden dim
  // The maximum representable id would overflow the tracker's watermark.
  EXPECT_THROW(
      engine.submit(Request{std::numeric_limits<RequestId>::max(),
                            Tensor<fp16_t>::zeros({4, engine.hidden()})}),
      std::invalid_argument);
}

// ---- per-session workspaces -------------------------------------------------

EngineOptions packed_options() {
  EngineOptions opts;
  opts.policy = BatchPolicy::kPacked;
  opts.flags = core::OptFlags::byte_transformer();
  opts.threads = 2;
  opts.session_workspaces = 8;  // opt in (default 0; EnginePool opts in for
                                // sticky-routed replicas)
  return opts;
}

RequestId submit_session(Engine& engine, int len, const char* session,
                         Rng& rng) {
  Request req;
  req.hidden = Tensor<fp16_t>::random_normal({len, engine.hidden()}, rng);
  if (session != nullptr) req.session = session;
  return engine.submit(std::move(req));
}

// The session-reuse contract: a session's follow-up round runs on the
// workspace its first round sized, so it performs zero allocations —
// observable through EngineStats::workspace_allocations.
TEST(Engine, SessionRoundsReuseTheirWorkspaceWithoutReallocating) {
  Engine engine(shared_model(), packed_options());
  Rng rng(5);

  // Turn 1 of session "a": creates the session workspace (a miss).
  submit_session(engine, 9, "a", rng);
  const auto first = engine.run_batch();
  ASSERT_EQ(first.size(), 1u);
  ASSERT_TRUE(first[0].session.has_value());  // provenance echoes the session
  EXPECT_EQ(*first[0].session, "a");
  const EngineStats s1 = engine.stats();
  EXPECT_EQ(s1.session_ws_misses, 1);
  EXPECT_EQ(s1.session_ws_hits, 0);
  EXPECT_GT(s1.workspace_allocations, 0);

  // Turn 2, same geometry: warm workspace, not one new allocation.
  submit_session(engine, 9, "a", rng);
  engine.run_batch();
  const EngineStats s2 = engine.stats();
  EXPECT_EQ(s2.session_ws_hits, 1);
  EXPECT_EQ(s2.session_ws_misses, 1);
  EXPECT_EQ(s2.workspace_allocations, s1.workspace_allocations);

  // A different session must not see "a"'s buffers as its own: it creates
  // its own workspace (a second miss, new allocations).
  submit_session(engine, 9, "b", rng);
  engine.run_batch();
  const EngineStats s3 = engine.stats();
  EXPECT_EQ(s3.session_ws_misses, 2);
  EXPECT_GT(s3.workspace_allocations, s2.workspace_allocations);
}

// Rounds mixing sessions (or carrying none) run on the engine-wide
// workspace: there is no single session to charge the buffers to, and the
// hit/miss accounting stays untouched.
TEST(Engine, MixedOrSessionlessRoundsUseTheEngineWideWorkspace) {
  Engine engine(shared_model(), packed_options());
  Rng rng(6);

  submit_session(engine, 4, "a", rng);
  submit_session(engine, 6, "b", rng);
  engine.run_batch();  // one round, two sessions
  submit_session(engine, 5, nullptr, rng);
  submit_session(engine, 5, nullptr, rng);
  engine.run_batch();  // one round, no sessions
  submit_session(engine, 4, "a", rng);
  submit_session(engine, 6, nullptr, rng);
  engine.run_batch();  // one round, sessioned + sessionless

  const EngineStats st = engine.stats();
  EXPECT_EQ(st.session_ws_hits, 0);
  EXPECT_EQ(st.session_ws_misses, 0);
  EXPECT_GT(st.workspace_allocations, 0);  // engine-wide buffers exist
}

TEST(Engine, SessionWorkspaceCacheEvictsLeastRecentlyUsed) {
  EngineOptions opts = packed_options();
  opts.session_workspaces = 1;  // room for exactly one session
  Engine engine(shared_model(), opts);
  Rng rng(7);

  submit_session(engine, 8, "a", rng);
  engine.run_batch();  // miss: "a" cached
  submit_session(engine, 8, "b", rng);
  engine.run_batch();  // miss: "b" evicts "a"
  submit_session(engine, 8, "a", rng);
  engine.run_batch();  // miss again: "a" was evicted
  submit_session(engine, 8, "a", rng);
  engine.run_batch();  // hit: "a" is resident again

  const EngineStats st = engine.stats();
  EXPECT_EQ(st.session_ws_misses, 3);
  EXPECT_EQ(st.session_ws_hits, 1);
}

TEST(Engine, SessionWorkspacesDisabledKeepsEverythingEngineWide) {
  EngineOptions opts = packed_options();
  opts.session_workspaces = 0;
  Engine engine(shared_model(), opts);
  Rng rng(8);

  submit_session(engine, 8, "a", rng);
  engine.run_batch();
  submit_session(engine, 8, "a", rng);
  engine.run_batch();

  const EngineStats st = engine.stats();
  EXPECT_EQ(st.session_ws_hits, 0);
  EXPECT_EQ(st.session_ws_misses, 0);

  opts.session_workspaces = -1;  // auto: resolves to disabled standalone
  Engine(shared_model(), opts);
  opts.session_workspaces = -2;  // validated like every other option
  EXPECT_THROW(Engine(shared_model(), opts), std::invalid_argument);
}

TEST(OptFlags, PresetsValidateAndNamesCarryVariant) {
  using core::OptFlags;
  for (const OptFlags& f :
       {OptFlags::baseline(), OptFlags::layernorm_fused(),
        OptFlags::bias_gelu_fused(), OptFlags::zero_padding_enabled(),
        OptFlags::byte_transformer()}) {
    EXPECT_TRUE(f.validate().empty()) << f.name();
  }
  EXPECT_EQ(OptFlags::baseline().name(), "baseline/batched");
  EXPECT_EQ(OptFlags::zero_padding_enabled().name(),
            "zero-padding/batched-zeropad");
  EXPECT_EQ(OptFlags::byte_transformer().name(), "fused-mha/dispatch");
  core::OptFlags shortk = core::OptFlags::byte_transformer();
  shortk.fused_kind = core::FusedMhaKind::kShort;
  EXPECT_EQ(shortk.name(), "fused-mha/short");
}

}  // namespace
}  // namespace bt::serving
