// ThreadPool: dynamic chunked scheduling correctness under stress.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "parallel/thread_pool.h"

namespace bt::par {
namespace {

TEST(ThreadPool, SizeIsAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1);
  ThreadPool pool4(4);
  EXPECT_EQ(pool4.size(), 4);
}

TEST(ThreadPool, EveryTaskRunsExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::int64_t kTasks = 10000;
  std::vector<std::atomic<int>> counts(kTasks);
  pool.run(kTasks, /*chunk=*/7, [&](std::int64_t i, int) {
    counts[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (std::int64_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(counts[static_cast<std::size_t>(i)].load(), 1) << "task " << i;
  }
}

TEST(ThreadPool, WorkerIndicesInRange) {
  ThreadPool pool(3);
  std::atomic<bool> bad{false};
  pool.run(1000, 1, [&](std::int64_t, int worker) {
    if (worker < 0 || worker >= 3) bad = true;
  });
  EXPECT_FALSE(bad.load());
}

TEST(ThreadPool, SingleTaskRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> n{0};
  pool.run(1, 1, [&](std::int64_t i, int worker) {
    EXPECT_EQ(i, 0);
    EXPECT_EQ(worker, 0);
    ++n;
  });
  EXPECT_EQ(n.load(), 1);
}

TEST(ThreadPool, ZeroTasksIsNoOp) {
  ThreadPool pool(2);
  std::atomic<int> n{0};
  pool.run(0, 1, [&](std::int64_t, int) { ++n; });
  EXPECT_EQ(n.load(), 0);
}

TEST(ThreadPool, SingleThreadedPoolWorks) {
  ThreadPool pool(1);
  std::int64_t sum = 0;
  pool.run(100, 10, [&](std::int64_t i, int) { sum += i; });
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPool, LargeChunkLargerThanTasks) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(10);
  pool.run(10, /*chunk=*/1000, [&](std::int64_t i, int) {
    counts[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(500);
  pool.parallel_for(100, 600, 16, [&](std::int64_t i) {
    counts[static_cast<std::size_t>(i - 100)].fetch_add(1);
  });
  for (auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  std::atomic<int> n{0};
  pool.parallel_for(5, 5, 1, [&](std::int64_t) { ++n; });
  pool.parallel_for(5, 3, 1, [&](std::int64_t) { ++n; });
  EXPECT_EQ(n.load(), 0);
}

TEST(ThreadPool, ManyConsecutiveRunsStress) {
  // Exercises the straggler/epoch handoff: rapid-fire jobs of tiny sizes.
  ThreadPool pool(4);
  for (int iter = 0; iter < 2000; ++iter) {
    std::atomic<std::int64_t> sum{0};
    const std::int64_t n = 1 + iter % 17;
    pool.run(n, 2, [&](std::int64_t i, int) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(), n * (n + 1) / 2) << "iter " << iter;
  }
}

TEST(ThreadPool, ResultsAreOrderIndependent) {
  ThreadPool pool(4);
  std::vector<double> out(4096, 0.0);
  pool.run(4096, 3, [&](std::int64_t i, int) {
    out[static_cast<std::size_t>(i)] = static_cast<double>(i) * 0.5;
  });
  for (std::int64_t i = 0; i < 4096; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], static_cast<double>(i) * 0.5);
  }
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&global_pool(), &global_pool());
  EXPECT_GE(global_pool().size(), 1);
}

}  // namespace
}  // namespace bt::par
