// ThreadPool: dynamic chunked scheduling correctness under stress.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "parallel/thread_pool.h"

namespace bt::par {
namespace {

TEST(ThreadPool, SizeIsAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1);
  ThreadPool pool4(4);
  EXPECT_EQ(pool4.size(), 4);
}

TEST(ThreadPool, EveryTaskRunsExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::int64_t kTasks = 10000;
  std::vector<std::atomic<int>> counts(kTasks);
  pool.run(kTasks, /*chunk=*/7, [&](std::int64_t i, int) {
    counts[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (std::int64_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(counts[static_cast<std::size_t>(i)].load(), 1) << "task " << i;
  }
}

TEST(ThreadPool, WorkerIndicesInRange) {
  ThreadPool pool(3);
  std::atomic<bool> bad{false};
  pool.run(1000, 1, [&](std::int64_t, int worker) {
    if (worker < 0 || worker >= 3) bad = true;
  });
  EXPECT_FALSE(bad.load());
}

TEST(ThreadPool, SingleTaskRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> n{0};
  pool.run(1, 1, [&](std::int64_t i, int worker) {
    EXPECT_EQ(i, 0);
    EXPECT_EQ(worker, 0);
    ++n;
  });
  EXPECT_EQ(n.load(), 1);
}

TEST(ThreadPool, ZeroTasksIsNoOp) {
  ThreadPool pool(2);
  std::atomic<int> n{0};
  pool.run(0, 1, [&](std::int64_t, int) { ++n; });
  EXPECT_EQ(n.load(), 0);
}

TEST(ThreadPool, SingleThreadedPoolWorks) {
  ThreadPool pool(1);
  std::int64_t sum = 0;
  pool.run(100, 10, [&](std::int64_t i, int) { sum += i; });
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPool, LargeChunkLargerThanTasks) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(10);
  pool.run(10, /*chunk=*/1000, [&](std::int64_t i, int) {
    counts[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(500);
  pool.parallel_for(100, 600, 16, [&](std::int64_t i) {
    counts[static_cast<std::size_t>(i - 100)].fetch_add(1);
  });
  for (auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  std::atomic<int> n{0};
  pool.parallel_for(5, 5, 1, [&](std::int64_t) { ++n; });
  pool.parallel_for(5, 3, 1, [&](std::int64_t) { ++n; });
  EXPECT_EQ(n.load(), 0);
}

TEST(ThreadPool, ManyConsecutiveRunsStress) {
  // Exercises the straggler/epoch handoff: rapid-fire jobs of tiny sizes.
  ThreadPool pool(4);
  for (int iter = 0; iter < 2000; ++iter) {
    std::atomic<std::int64_t> sum{0};
    const std::int64_t n = 1 + iter % 17;
    pool.run(n, 2, [&](std::int64_t i, int) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(), n * (n + 1) / 2) << "iter " << iter;
  }
}

TEST(ThreadPool, ResultsAreOrderIndependent) {
  ThreadPool pool(4);
  std::vector<double> out(4096, 0.0);
  pool.run(4096, 3, [&](std::int64_t i, int) {
    out[static_cast<std::size_t>(i)] = static_cast<double>(i) * 0.5;
  });
  for (std::int64_t i = 0; i < 4096; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], static_cast<double>(i) * 0.5);
  }
}

// Regression: run() used to publish each job into a single current_/epoch_
// slot with no submission ordering, so two threads calling run() at once
// clobbered each other (workers could execute the wrong job or miss tasks).
// Hammer the pool from several external threads under drain-style load and
// check every task of every job ran exactly once.
TEST(ThreadPool, ConcurrentExternalSubmittersAreSerialized) {
  ThreadPool pool(4);
  constexpr int kSubmitters = 6;
  constexpr int kJobsPerSubmitter = 200;
  constexpr std::int64_t kTasks = 64;

  std::vector<std::thread> submitters;
  std::vector<std::atomic<std::int64_t>> sums(kSubmitters);
  std::atomic<bool> bad{false};
  for (auto& s : sums) s = 0;

  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int j = 0; j < kJobsPerSubmitter; ++j) {
        std::vector<std::atomic<int>> counts(kTasks);
        for (auto& c : counts) c = 0;
        pool.run(kTasks, /*chunk=*/3, [&](std::int64_t i, int) {
          counts[static_cast<std::size_t>(i)].fetch_add(1);
          sums[static_cast<std::size_t>(t)].fetch_add(i + 1);
        });
        for (auto& c : counts) {
          if (c.load() != 1) bad = true;
        }
      }
    });
  }
  for (auto& s : submitters) s.join();

  EXPECT_FALSE(bad.load());
  for (int t = 0; t < kSubmitters; ++t) {
    EXPECT_EQ(sums[static_cast<std::size_t>(t)].load(),
              static_cast<std::int64_t>(kJobsPerSubmitter) * kTasks *
                  (kTasks + 1) / 2)
        << "submitter " << t;
  }
}

// Regression: a nested run() from inside a worker task used to deadlock (the
// worker waited on the job slot its own outer job occupied). Nested calls now
// execute inline on the calling thread.
TEST(ThreadPool, NestedRunExecutesInline) {
  ThreadPool pool(4);
  constexpr std::int64_t kOuter = 64;
  constexpr std::int64_t kInner = 32;
  std::vector<std::atomic<int>> counts(kOuter * kInner);
  for (auto& c : counts) c = 0;
  std::atomic<bool> bad_worker{false};

  pool.parallel_for(0, kOuter, 1, [&](std::int64_t i) {
    pool.parallel_for(0, kInner, 4, [&](std::int64_t j) {
      counts[static_cast<std::size_t>(i * kInner + j)].fetch_add(1);
    });
    // Nested run() with an explicit worker check: the inline execution must
    // report a worker index inside the pool's range.
    pool.run(1, 1, [&](std::int64_t, int worker) {
      if (worker < 0 || worker >= pool.size()) bad_worker = true;
    });
  });

  for (auto& c : counts) EXPECT_EQ(c.load(), 1);
  EXPECT_FALSE(bad_worker.load());
}

// The single-worker and single-task fast paths execute as worker 0, so they
// must serialize against other submitters like any job — two jobs running
// as worker 0 at once would race worker-indexed state (Device scratch).
TEST(ThreadPool, InlineFastPathsSerializeAgainstConcurrentSubmitters) {
  for (const int pool_threads : {1, 4}) {
    ThreadPool pool(pool_threads);
    std::atomic<int> inside{0};
    std::atomic<bool> overlapped{false};
    std::vector<std::thread> submitters;
    for (int t = 0; t < 4; ++t) {
      submitters.emplace_back([&] {
        for (int j = 0; j < 500; ++j) {
          // num_tasks == 1 takes the inline path on any pool size; on the
          // 1-thread pool every call does.
          pool.run(1, 1, [&](std::int64_t, int worker) {
            if (worker == 0 && inside.fetch_add(1) != 0) overlapped = true;
            if (worker == 0) inside.fetch_sub(1);
          });
        }
      });
    }
    for (auto& s : submitters) s.join();
    EXPECT_FALSE(overlapped.load()) << "pool(" << pool_threads << ")";
  }
}

TEST(ThreadPool, NestedRunFromExternalInlinePathAlsoInlines) {
  // Depth-3 nesting through the single-task inline fast path must terminate
  // and cover every index.
  ThreadPool pool(2);
  std::atomic<int> n{0};
  pool.run(1, 1, [&](std::int64_t, int) {
    pool.run(3, 1, [&](std::int64_t, int) {
      pool.run(2, 1, [&](std::int64_t, int) { ++n; });
    });
  });
  EXPECT_EQ(n.load(), 6);
}

// Same-thread cross-pool nesting A -> B -> A: the re-entry into A must be
// detected through B's frame (A's submission mutex is held by this very
// thread) and run inline instead of deadlocking. B's stage is single-task
// so it executes inline on the calling A-worker — handing it to one of B's
// own workers would be the cross-*thread* cycle the header documents as
// undetectable and caller-forbidden.
TEST(ThreadPool, CrossPoolNestedReentryRunsInline) {
  ThreadPool a(2);
  ThreadPool b(2);
  std::atomic<int> n{0};
  a.run(4, 1, [&](std::int64_t, int) {
    b.run(1, 1, [&](std::int64_t, int) {
      a.run(3, 1, [&](std::int64_t, int) { ++n; });
    });
  });
  EXPECT_EQ(n.load(), 4 * 1 * 3);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&global_pool(), &global_pool());
  EXPECT_GE(global_pool().size(), 1);
}

}  // namespace
}  // namespace bt::par
