// Prefix-activation cache (cache/): BudgetLru accounting, FNV revalidation,
// and the exactness contract — a cached-prefix resume is BITWISE identical
// to a full re-encode for every batching policy, including divergent
// histories, eviction mid-conversation, migration invalidation, and
// concurrent submitters through a Service (the TSan/ASan CI legs run this
// binary).
#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "cache/budget_lru.h"
#include "cache/prefix_cache.h"
#include "common/rng.h"
#include "core/model.h"
#include "serving/engine.h"
#include "serving/registry.h"
#include "serving/service.h"
#include "tensor/tensor.h"

namespace bt {
namespace {

// ---- BudgetLru --------------------------------------------------------------

std::shared_ptr<const void> blob() { return std::make_shared<int>(0); }

TEST(BudgetLru, EvictsColdestFirstAndRefreshOnGetProtects) {
  cache::BudgetLru lru(100);
  EXPECT_TRUE(lru.put("a", blob(), 40).stored);
  EXPECT_TRUE(lru.put("b", blob(), 40).stored);
  EXPECT_EQ(lru.bytes(), 80u);

  // "c" needs 40: "a" (coldest) goes, "b" stays.
  const auto r1 = lru.put("c", blob(), 40);
  EXPECT_TRUE(r1.stored);
  EXPECT_EQ(r1.evicted_count, 1u);
  EXPECT_EQ(r1.evicted_bytes, 40u);
  ASSERT_EQ(r1.evicted_keys.size(), 1u);
  EXPECT_EQ(r1.evicted_keys[0], "a");
  EXPECT_EQ(lru.get("a"), nullptr);

  // get("b") refreshes it, so the next eviction takes "c" instead.
  EXPECT_NE(lru.get("b"), nullptr);
  const auto r2 = lru.put("d", blob(), 40);
  ASSERT_EQ(r2.evicted_keys.size(), 1u);
  EXPECT_EQ(r2.evicted_keys[0], "c");
  EXPECT_NE(lru.peek("b"), nullptr);
  EXPECT_EQ(lru.bytes(), 80u);
  EXPECT_LE(lru.bytes(), lru.budget());
}

TEST(BudgetLru, SameKeyReplaceSwapsBytesWithoutCountingEviction) {
  cache::BudgetLru lru(100);
  EXPECT_TRUE(lru.put("a", blob(), 60).stored);
  const auto r = lru.put("a", blob(), 80);  // would not fit beside itself
  EXPECT_TRUE(r.stored);
  EXPECT_EQ(r.evicted_count, 0u);  // a replace is not displacement
  EXPECT_EQ(lru.bytes(), 80u);
  EXPECT_EQ(lru.size(), 1u);
}

TEST(BudgetLru, OversizedEntryIsRejectedNotSqueezedIn) {
  cache::BudgetLru lru(100);
  EXPECT_TRUE(lru.put("a", blob(), 90).stored);
  const auto r = lru.put("big", blob(), 101);  // bigger than the whole budget
  EXPECT_FALSE(r.stored);
  EXPECT_EQ(r.evicted_count, 0u);        // must not flush the cache for it
  EXPECT_NE(lru.peek("a"), nullptr);     // resident set untouched
  EXPECT_EQ(lru.bytes(), 90u);
}

TEST(BudgetLru, EraseFreesBytesAndIsNotAnEviction) {
  cache::BudgetLru lru(100);
  lru.put("a", blob(), 30);
  lru.put("b", blob(), 30);
  EXPECT_EQ(lru.erase("a"), 30u);
  EXPECT_EQ(lru.erase("a"), 0u);  // already gone
  EXPECT_EQ(lru.bytes(), 30u);
  const auto order = lru.keys_lru_order();
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0], "b");
}

// ---- hashing ----------------------------------------------------------------

TEST(PrefixCacheHash, StreamingExtensionMatchesOneShotHash) {
  Rng rng(11);
  const Tensor<fp16_t> rows = Tensor<fp16_t>::random_normal({10, 8}, rng);
  const auto full = cache::PrefixCache::hash_rows(rows.data(), 10, 8);
  const auto head = cache::PrefixCache::hash_rows(rows.data(), 6, 8);
  const auto resumed =
      cache::PrefixCache::hash_rows(rows.data() + 6 * 8, 4, 8, head);
  EXPECT_EQ(full, resumed);

  Tensor<fp16_t> edited = rows.clone();  // one flipped element must change the hash
  edited(0, 0) = fp16_t(float(edited(0, 0)) + 1.0f);
  EXPECT_NE(full, cache::PrefixCache::hash_rows(edited.data(), 10, 8));
}

// ---- PrefixCache unit behaviour --------------------------------------------

// A tiny synthetic entry: layers=2, hidden=4.
struct SyntheticConv {
  Tensor<fp16_t> input;   // [len, 4]
  std::vector<fp16_t> qkv;     // [2, len, 12]
  std::vector<fp16_t> output;  // [len, 4]

  explicit SyntheticConv(int len, int seed) {
    Rng rng(seed);
    input = Tensor<fp16_t>::random_normal({len, 4}, rng);
    qkv.resize(static_cast<std::size_t>(2 * len * 12), fp16_t(0.5f));
    output.resize(static_cast<std::size_t>(len * 4), fp16_t(0.25f));
  }
};

TEST(PrefixCache, ProbeHitsOnlyOnStrictValidatedPrefix) {
  cache::PrefixCache cache(1 << 20);
  SyntheticConv conv(12, 3);
  const std::string key = cache::PrefixCache::session_key("m", "s");

  EXPECT_EQ(cache.probe(key, conv.input.data(), 12), nullptr);  // absent
  cache.insert(key, conv.input.data(), 8, 2, 4, conv.qkv.data(), 8,
               conv.output.data());

  // Longer request whose first 8 rows match: hit.
  const auto hit = cache.probe(key, conv.input.data(), 12);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->length, 8);
  EXPECT_EQ(hit->layers, 2);

  // Equal length is a replay, not an extension: miss (strict prefix only).
  EXPECT_EQ(cache.probe(key, conv.input.data(), 8), nullptr);

  // Divergent history: same length, edited row 0 -> hash fails -> miss.
  Tensor<fp16_t> edited = conv.input.clone();
  edited(0, 0) = fp16_t(9.0f);
  EXPECT_EQ(cache.probe(key, edited.data(), 12), nullptr);

  const auto st = cache.stats();
  EXPECT_EQ(st.probes, 4);
  EXPECT_EQ(st.hits, 1);
  EXPECT_EQ(st.misses, 3);
}

TEST(PrefixCache, ExtendBuildsLongerSiblingWithContinuedHash) {
  cache::PrefixCache cache(1 << 20);
  SyntheticConv conv(16, 4);
  const std::string key = cache::PrefixCache::session_key("m", "s");
  cache.insert(key, conv.input.data(), 10, 2, 4, conv.qkv.data(), 10,
               conv.output.data());
  const auto base = cache.probe(key, conv.input.data(), 16);
  ASSERT_NE(base, nullptr);

  // Extend by the 6 suffix rows; suffix qkv is [layers, 6, 12] contiguous.
  std::vector<fp16_t> sqkv(static_cast<std::size_t>(2 * 6 * 12), fp16_t(1));
  std::vector<fp16_t> sout(static_cast<std::size_t>(6 * 4), fp16_t(2));
  cache.extend(key, base, conv.input.data() + 10 * 4, 16, sqkv.data(),
               sout.data());

  // The new entry validates as a true prefix of an 18-row follow-up whose
  // first 16 rows are the same history — i.e. its continued hash equals the
  // one-shot hash of all 16 rows.
  Tensor<fp16_t> longer({18, 4});
  std::memcpy(longer.data(), conv.input.data(),
              static_cast<std::size_t>(16 * 4) * sizeof(fp16_t));
  const auto extended = cache.probe(key, longer.data(), 18);
  ASSERT_NE(extended, nullptr);
  EXPECT_EQ(extended->length, 16);
  EXPECT_EQ(extended->hash,
            cache::PrefixCache::hash_rows(conv.input.data(), 16, 4));
  // base is immutable: the probe snapshot still says 10 rows.
  EXPECT_EQ(base->length, 10);
  EXPECT_EQ(cache.stats().extends, 1);
}

TEST(PrefixCache, NoteRouteDropsEntryOnlyWhenThePinMoves) {
  cache::PrefixCache cache(1 << 20);
  SyntheticConv conv(8, 5);
  const std::string key = cache::PrefixCache::session_key("m", "s");
  cache.insert(key, conv.input.data(), 6, 2, 4, conv.qkv.data(), 6,
               conv.output.data());

  EXPECT_FALSE(cache.note_route(key, 0));  // first sighting: no migration
  EXPECT_FALSE(cache.note_route(key, 0));  // stable pin
  ASSERT_NE(cache.probe(key, conv.input.data(), 8), nullptr);

  EXPECT_TRUE(cache.note_route(key, 1));  // breaker moved the session
  EXPECT_EQ(cache.probe(key, conv.input.data(), 8), nullptr);  // dropped
  const auto st = cache.stats();
  EXPECT_EQ(st.migrations, 1);
  EXPECT_EQ(st.invalidations, 1);
  EXPECT_FALSE(cache.note_route(key, 0));  // tracking died with the entry
}

TEST(PrefixCache, BudgetIsAHardCeilingUnderPressure) {
  SyntheticConv probe_conv(8, 6);
  const std::size_t one_entry =
      [&] {  // measure a real entry's footprint once
        cache::PrefixCache sizing(std::size_t(1) << 30);
        sizing.insert("k", probe_conv.input.data(), 8, 2, 4,
                      probe_conv.qkv.data(), 8, probe_conv.output.data());
        return sizing.stats().bytes;
      }();

  // Budget for one entry (plus slack): the second session must evict the
  // first, and the byte level must never exceed the budget at any point.
  cache::PrefixCache cache(one_entry + one_entry / 2);
  for (int s = 0; s < 6; ++s) {
    SyntheticConv conv(8, 100 + s);
    cache.insert(cache::PrefixCache::session_key("m", std::to_string(s)),
                 conv.input.data(), 8, 2, 4, conv.qkv.data(), 8,
                 conv.output.data());
    EXPECT_LE(cache.stats().bytes, cache.budget());
    EXPECT_EQ(cache.stats().entries, 1u);
  }
  EXPECT_EQ(cache.stats().evictions, 5);

  // An entry larger than the whole budget is rejected outright and does not
  // flush what is resident.
  SyntheticConv huge(512, 7);
  cache.insert(cache::PrefixCache::session_key("m", "huge"),
               huge.input.data(), 512, 2, 4, huge.qkv.data(), 512,
               huge.output.data());
  EXPECT_EQ(cache.stats().rejected, 1);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_LE(cache.stats().bytes, cache.budget());
}

// ---- Engine integration: the exactness contract -----------------------------

core::BertConfig tiny_config() {
  core::BertConfig cfg;
  cfg.layers = 2;
  cfg.heads = 2;
  cfg.head_size = 16;
  return cfg;
}

std::shared_ptr<const core::BertModel> shared_model() {
  static std::shared_ptr<const core::BertModel> model = [] {
    Rng rng(777);
    return std::make_shared<const core::BertModel>(
        core::BertModel::random(tiny_config(), rng));
  }();
  return model;
}

core::OptFlags causal_flags() {
  core::OptFlags f = core::OptFlags::byte_transformer();
  f.causal = true;
  return f;
}

serving::EngineOptions engine_options(serving::BatchPolicy policy) {
  serving::EngineOptions opts;
  opts.policy = policy;
  opts.flags = causal_flags();
  opts.threads = 2;
  if (policy == serving::BatchPolicy::kSortGroup) opts.group_size = 2;
  return opts;
}

// One conversation's full history; round r submits the first lens[r] rows.
// Lengths stay far below attention.h kShortSeqCutoff so the kernel-dispatch
// choice cannot differ between a resume and its full-encode reference.
Tensor<fp16_t> make_history(int total, int hidden, int seed) {
  Rng rng(seed);
  return Tensor<fp16_t>::random_normal({total, hidden}, rng);
}

Tensor<fp16_t> prefix_of(const Tensor<fp16_t>& history, int len) {
  Tensor<fp16_t> t({len, history.dim(1)});
  std::memcpy(t.data(), history.data(),
              static_cast<std::size_t>(len * history.dim(1)) *
                  sizeof(fp16_t));
  return t;
}

void expect_bitwise_equal(const Tensor<fp16_t>& a, const Tensor<fp16_t>& b,
                          const char* what) {
  ASSERT_EQ(a.dim(0), b.dim(0)) << what;
  ASSERT_EQ(a.dim(1), b.dim(1)) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<std::size_t>(a.size()) * sizeof(fp16_t)),
            0)
      << what << ": cached-prefix output differs from full re-encode";
}

// Runs one single-request round through an engine and returns the output.
Tensor<fp16_t> run_one(serving::Engine& engine, Tensor<fp16_t> hidden,
                       const char* session) {
  serving::Request req;
  req.hidden = std::move(hidden);
  if (session != nullptr) req.session = session;
  engine.submit(std::move(req));
  auto responses = engine.run_batch();
  EXPECT_EQ(responses.size(), 1u);
  return std::move(responses[0].output);
}

// The acceptance contract, per batching policy: every round of a growing
// conversation served through the cache is bitwise identical to the same
// input full-encoded by a cache-less engine, and rounds past the first are
// genuine hits that only compute the suffix.
class PrefixCacheEngine
    : public ::testing::TestWithParam<serving::BatchPolicy> {};

TEST_P(PrefixCacheEngine, ResumedRoundsAreBitwiseEqualToFullEncode) {
  auto cache = std::make_shared<cache::PrefixCache>(std::size_t(64) << 20);
  serving::EngineOptions cached_opts = engine_options(GetParam());
  cached_opts.prefix_cache = cache;
  cached_opts.cache_scope = "tiny";
  serving::Engine cached(shared_model(), cached_opts);
  serving::Engine plain(shared_model(), engine_options(GetParam()));

  const int hidden = static_cast<int>(cached.hidden());
  const Tensor<fp16_t> history = make_history(180, hidden, 42);
  const std::vector<int> rounds{24, 57, 103, 180};

  long long expected_saved = 0;
  for (std::size_t r = 0; r < rounds.size(); ++r) {
    const int len = rounds[r];
    const Tensor<fp16_t> out_cached =
        run_one(cached, prefix_of(history, len), "conv");
    const Tensor<fp16_t> out_plain =
        run_one(plain, prefix_of(history, len), nullptr);
    expect_bitwise_equal(out_cached, out_plain,
                         ("round " + std::to_string(r)).c_str());
    if (r > 0) expected_saved += rounds[r - 1];
  }

  const serving::EngineStats st = cached.stats();
  EXPECT_EQ(st.cache_misses, 1);  // only the cold first round
  EXPECT_EQ(st.cache_hits, static_cast<long long>(rounds.size()) - 1);
  EXPECT_EQ(st.cache_saved_tokens, expected_saved);
  const cache::CacheStats cs = cache->stats();
  EXPECT_EQ(cs.inserts, 1);
  EXPECT_EQ(cs.extends, static_cast<long long>(rounds.size()) - 1);
  EXPECT_LE(cs.bytes, cache->budget());
}

// Divergent history — the user edited an earlier turn — must fall back to a
// full re-encode (hash revalidation), never serve the stale prefix.
TEST_P(PrefixCacheEngine, DivergentHistoryFallsBackToFullEncode) {
  auto cache = std::make_shared<cache::PrefixCache>(std::size_t(64) << 20);
  serving::EngineOptions cached_opts = engine_options(GetParam());
  cached_opts.prefix_cache = cache;
  cached_opts.cache_scope = "tiny";
  serving::Engine cached(shared_model(), cached_opts);
  serving::Engine plain(shared_model(), engine_options(GetParam()));

  const int hidden = static_cast<int>(cached.hidden());
  const Tensor<fp16_t> history = make_history(96, hidden, 43);
  run_one(cached, prefix_of(history, 40), "conv");  // seeds the cache

  Tensor<fp16_t> edited = prefix_of(history, 96);
  edited(3, 5) = fp16_t(float(edited(3, 5)) + 0.5f);  // rewrite turn history
  Tensor<fp16_t> edited_copy = edited.clone();
  const Tensor<fp16_t> out_cached = run_one(cached, std::move(edited), "conv");
  const Tensor<fp16_t> out_plain =
      run_one(plain, std::move(edited_copy), nullptr);
  expect_bitwise_equal(out_cached, out_plain, "diverged round");

  const serving::EngineStats st = cached.stats();
  EXPECT_EQ(st.cache_hits, 0);
  EXPECT_EQ(st.cache_misses, 2);
  // The miss re-inserted the edited history as the conversation's newest
  // state — most recent wins, so the next edited-lineage round can hit.
  EXPECT_EQ(cache->stats().inserts, 2);
}

// Eviction mid-conversation (byte pressure from another session) silently
// degrades to a full re-encode — same bits, one more miss.
TEST_P(PrefixCacheEngine, EvictionMidConversationStaysExact) {
  // Budget sized so the two sessions' entries cannot coexist: measure one
  // real entry first, then allow 1.5x that.
  const serving::BatchPolicy policy = GetParam();
  const int hidden = static_cast<int>(tiny_config().hidden());
  const Tensor<fp16_t> hist_a = make_history(120, hidden, 45);
  const Tensor<fp16_t> hist_b = make_history(120, hidden, 46);

  std::size_t one_entry = 0;
  {
    auto sizing = std::make_shared<cache::PrefixCache>(std::size_t(1) << 30);
    serving::EngineOptions opts = engine_options(policy);
    opts.prefix_cache = sizing;
    opts.cache_scope = "tiny";
    serving::Engine e(shared_model(), opts);
    run_one(e, prefix_of(hist_a, 80), "a");
    one_entry = sizing->stats().bytes;
  }

  auto cache =
      std::make_shared<cache::PrefixCache>(one_entry + one_entry / 2);
  serving::EngineOptions cached_opts = engine_options(policy);
  cached_opts.prefix_cache = cache;
  cached_opts.cache_scope = "tiny";
  serving::Engine cached(shared_model(), cached_opts);
  serving::Engine plain(shared_model(), engine_options(policy));

  run_one(cached, prefix_of(hist_a, 80), "a");  // insert a
  run_one(cached, prefix_of(hist_b, 80), "b");  // insert b -> evicts a
  EXPECT_GE(cache->stats().evictions, 1);
  EXPECT_LE(cache->stats().bytes, cache->budget());

  // Session a's next round finds nothing (evicted): full re-encode, bitwise
  // equal, counted as a miss — and re-inserted, which in turn evicts b.
  const Tensor<fp16_t> out_cached =
      run_one(cached, prefix_of(hist_a, 110), "a");
  const Tensor<fp16_t> out_plain =
      run_one(plain, prefix_of(hist_a, 110), nullptr);
  expect_bitwise_equal(out_cached, out_plain, "post-eviction round");
  EXPECT_EQ(cached.stats().cache_hits, 0);
  EXPECT_EQ(cached.stats().cache_misses, 3);
  EXPECT_LE(cache->stats().bytes, cache->budget());
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PrefixCacheEngine,
                         ::testing::Values(serving::BatchPolicy::kPadToMax,
                                           serving::BatchPolicy::kSortGroup,
                                           serving::BatchPolicy::kPacked),
                         [](const auto& info) {
                           switch (info.param) {
                             case serving::BatchPolicy::kPadToMax:
                               return "PadToMax";
                             case serving::BatchPolicy::kSortGroup:
                               return "SortGroup";
                             default:
                               return "Packed";
                           }
                         });

// The cache needs causal packed attention to be exact; the engine must
// refuse a cache under any other flag set rather than serve wrong bits.
TEST(PrefixCacheEngineValidation, RejectsCacheWithoutCausalPackedFlags) {
  auto cache = std::make_shared<cache::PrefixCache>(1 << 20);
  serving::EngineOptions opts;
  opts.policy = serving::BatchPolicy::kPacked;
  opts.flags = core::OptFlags::byte_transformer();  // causal NOT set
  opts.prefix_cache = cache;
  EXPECT_THROW(serving::Engine(shared_model(), opts), std::invalid_argument);
}

// Mixed rounds still work: a sessionless request batched in the same round
// as a conversation neither touches nor corrupts the cache.
TEST(PrefixCacheEngineValidation, SessionlessTrafficBypassesTheCache) {
  auto cache = std::make_shared<cache::PrefixCache>(std::size_t(64) << 20);
  serving::EngineOptions opts = engine_options(serving::BatchPolicy::kPacked);
  opts.prefix_cache = cache;
  opts.cache_scope = "tiny";
  serving::Engine engine(shared_model(), opts);

  const int hidden = static_cast<int>(engine.hidden());
  const Tensor<fp16_t> history = make_history(64, hidden, 47);
  Rng rng(48);

  serving::Request conv;
  conv.hidden = prefix_of(history, 30);
  conv.session = "conv";
  engine.submit(std::move(conv));
  serving::Request anon;
  anon.hidden = Tensor<fp16_t>::random_normal({20, hidden}, rng);
  engine.submit(std::move(anon));
  engine.run_batch();

  EXPECT_EQ(cache->stats().inserts, 1);  // only the sessioned request
  EXPECT_EQ(cache->stats().probes, 1);
  EXPECT_EQ(engine.stats().cache_misses, 1);
}

// ---- Service-level concurrency ---------------------------------------------

// N conversation threads drive growing prefixes through one Service with a
// shared cache; every round past the first must be a hit and every response
// must be bitwise identical to a cache-less single-request reference. This
// is the test the TSan CI leg runs to pin the cache's thread-safety.
TEST(PrefixCacheService, ConcurrentConversationsStayExactAndHit) {
  constexpr int kSessions = 4;
  constexpr int kRounds = 3;
  const std::vector<int> lens{20, 44, 71};

  const int hidden = static_cast<int>(tiny_config().hidden());
  std::vector<Tensor<fp16_t>> histories;
  for (int s = 0; s < kSessions; ++s) {
    histories.push_back(make_history(lens.back(), hidden, 500 + s));
  }

  // Reference outputs: cache-less single-request full encodes.
  std::vector<std::vector<Tensor<fp16_t>>> expected(kSessions);
  {
    serving::Engine plain(shared_model(),
                          engine_options(serving::BatchPolicy::kPacked));
    for (int s = 0; s < kSessions; ++s) {
      for (int r = 0; r < kRounds; ++r) {
        expected[static_cast<std::size_t>(s)].push_back(
            run_one(plain, prefix_of(histories[static_cast<std::size_t>(s)],
                                     lens[static_cast<std::size_t>(r)]),
                    nullptr));
      }
    }
  }

  serving::EnginePoolOptions pool_opts;
  pool_opts.engine.engine = engine_options(serving::BatchPolicy::kPacked);
  pool_opts.engine.max_wait_seconds = 0.001;
  pool_opts.replicas = 1;
  serving::ModelRegistry registry;
  registry.add("tiny", shared_model(), pool_opts);
  serving::ServiceOptions service_opts;
  service_opts.prefix_cache_bytes = std::size_t(64) << 20;
  serving::Service service(std::move(registry), service_opts);
  ASSERT_NE(service.prefix_cache(), nullptr);

  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int s = 0; s < kSessions; ++s) {
    threads.emplace_back([&, s] {
      for (int r = 0; r < kRounds; ++r) {
        serving::Request req;
        req.hidden = prefix_of(histories[static_cast<std::size_t>(s)],
                               lens[static_cast<std::size_t>(r)]);
        req.session = "conv-" + std::to_string(s);
        serving::Response resp = service.submit(std::move(req)).get();
        const Tensor<fp16_t>& want =
            expected[static_cast<std::size_t>(s)][static_cast<std::size_t>(r)];
        if (resp.output.dim(0) != want.dim(0) ||
            std::memcmp(resp.output.data(), want.data(),
                        static_cast<std::size_t>(want.size()) *
                            sizeof(fp16_t)) != 0) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  service.stop();

  EXPECT_EQ(mismatches.load(), 0);
  const serving::EngineStats st = service.stats();
  EXPECT_EQ(st.cache_hits + st.cache_misses,
            static_cast<long long>(kSessions) * kRounds);
  // Round 1..R-1 of every session probes state its own previous round
  // published before the future resolved: all hits.
  EXPECT_EQ(st.cache_hits, static_cast<long long>(kSessions) * (kRounds - 1));
  EXPECT_EQ(st.cache_misses, kSessions);
  const cache::CacheStats cs = service.prefix_cache()->stats();
  EXPECT_LE(cs.bytes, service.prefix_cache()->budget());
  EXPECT_EQ(cs.entries, static_cast<std::size_t>(kSessions));
}

}  // namespace
}  // namespace bt
