#!/usr/bin/env bash
# Concurrency-hygiene lint for src/ — the grep-level complement to the
# clang -Wthread-safety build (docs/ANALYSIS.md). Three rules:
#
#   1. No raw std::mutex / std::condition_variable members outside the
#      annotated wrappers in src/common/mutex.h. Raw primitives are
#      invisible to the thread-safety analysis; a lock the analysis cannot
#      see is a lock it cannot check.
#
#   2. No `throw` in the functions that run on scheduler / event-loop /
#      pump / worker threads. An exception escaping one of these threads is
#      std::terminate; error delivery from them is promises and error
#      codes, never throws.
#
#   3. Every file that declares a bt::Mutex member also names
#      BT_GUARDED_BY somewhere — a mutex with no guarded members is either
#      dead weight or (worse) guarding state the analysis doesn't know
#      about.
#
#   4. Every fault point named at a BT_FAULT_* site in src/ is documented
#      in the docs/ROBUSTNESS.md catalog. An undocumented point is
#      invisible to operators writing chaos configs — and to the reviewer
#      deciding whether the injection site is safe.
#
#   5. Every metric name registered against obs::MetricRegistry in src/ is
#      documented in the docs/OBSERVABILITY.md catalog. An undocumented
#      metric is a dashboard nobody can build and a name nobody reviews
#      for collision with the existing namespace.
#
#   6. Same contract for the cache.* metric namespace (cache/prefix_cache.cc
#      registers its literals outside rule 5's serving|net|obs prefix set):
#      every cache.* literal must appear in the docs/OBSERVABILITY.md
#      catalog.
#
# Exit 0 = clean, 1 = violations (printed per rule). Run from anywhere.
set -u

cd "$(dirname "$0")/.."
fail=0

note() { printf '%s\n' "$*"; }

# ---- rule 1: raw synchronization primitives as members ----------------------
# Member declarations look like "std::mutex name_;" (possibly mutable).
# Local uses of std::unique_lock etc. don't match; common/mutex.h is the one
# allowed home of the raw types.
raw=$(grep -rnE '^[[:space:]]*(mutable[[:space:]]+)?std::(mutex|recursive_mutex|shared_mutex|condition_variable(_any)?)[[:space:]]+[A-Za-z_]' \
      --include='*.h' --include='*.cc' src/ | grep -v '^src/common/mutex.h:')
if [[ -n "$raw" ]]; then
  note "rule 1: raw std::mutex/std::condition_variable member(s) outside"
  note "src/common/mutex.h — use bt::Mutex / bt::CondVar so the"
  note "thread-safety analysis can see the lock:"
  note "$raw"
  fail=1
fi

# ---- rule 2: no throw on scheduler / loop / pump / worker threads -----------
# Extract each function's body by brace counting from its definition line
# and grep it for throw statements. (Comments mentioning "throw" are fine;
# only "throw " / "throw;" statements match.)
check_nothrow() {
  local file=$1 fn=$2
  local body
  body=$(awk -v fn="$fn" '
    index($0, fn) && !found { found = 1 }
    found {
      print
      n = gsub(/{/, "{"); depth += n
      n = gsub(/}/, "}"); depth -= n
      if (depth <= 0 && saw_open) exit
      if (depth > 0) saw_open = 1
    }' "$file")
  if [[ -z "$body" ]]; then
    note "rule 2: $fn not found in $file (lint out of date?)"
    fail=1
    return
  fi
  local throws
  throws=$(printf '%s\n' "$body" | grep -nE '(^|[^_[:alnum:]])throw([[:space:]]|;)' \
           | grep -vE '^\s*[0-9]+:\s*//')
  if [[ -n "$throws" ]]; then
    note "rule 2: throw in $fn ($file) — this function runs on a"
    note "scheduler/loop thread; an escaping exception is std::terminate:"
    note "$throws"
    fail=1
  fi
}

check_nothrow src/parallel/thread_pool.cc 'ThreadPool::worker_loop'
check_nothrow src/parallel/thread_pool.cc 'ThreadPool::work_on_job'
check_nothrow src/serving/async_engine.cc 'AsyncEngine::scheduler_loop'
check_nothrow src/net/server.cc 'void loop()'
check_nothrow src/net/server.cc 'void pump_loop()'
check_nothrow src/net/server.cc 'void process_completions()'
check_nothrow src/net/server.cc 'bool handle_readable('
check_nothrow src/net/server.cc 'bool handle_submit('
check_nothrow src/net/server.cc 'bool handle_stats('
check_nothrow src/net/client.cc 'Client::receive_loop'
check_nothrow src/net/client.cc 'Client::retry_loop'

# ---- rule 3: a bt::Mutex member implies BT_GUARDED_BY somewhere -------------
while IFS= read -r file; do
  [[ "$file" == src/common/mutex.h ]] && continue
  if ! grep -q 'BT_GUARDED_BY' "$file"; then
    note "rule 3: $file declares a bt::Mutex member but names no"
    note "BT_GUARDED_BY — annotate what the mutex guards (or delete it)."
    fail=1
  fi
done < <(grep -rlE '^[[:space:]]*(mutable[[:space:]]+)?Mutex[[:space:]]+[A-Za-z_]+_?' \
         --include='*.h' --include='*.cc' src/)

# ---- rule 4: every BT_FAULT_* site names a documented fault point -----------
# Injection sites look like BT_FAULT_THROW("name", ...); the catalog in
# docs/ROBUSTNESS.md carries one `name` entry per point. src/common/fault.h
# is exempt (it defines the macros, it doesn't place points).
points=$(grep -rhoE 'BT_FAULT_[A-Z]+\("[^"]+"' --include='*.h' --include='*.cc' src/ \
         | grep -v 'src/common/fault.h' | sed -E 's/.*\("([^"]+)".*/\1/' | sort -u)
if [[ -n "$points" ]]; then
  if [[ ! -f docs/ROBUSTNESS.md ]]; then
    note "rule 4: BT_FAULT_* sites exist but docs/ROBUSTNESS.md is missing —"
    note "the fault-point catalog must document every injection point."
    fail=1
  else
    while IFS= read -r point; do
      if ! grep -q "\`$point\`" docs/ROBUSTNESS.md; then
        note "rule 4: fault point \"$point\" is injected in src/ but not"
        note "documented in the docs/ROBUSTNESS.md catalog — add a row for it."
        fail=1
      fi
    done <<< "$points"
  fi
fi

# ---- rule 5: every registered metric name is in the observability catalog ---
# Metric names are dotted `serving.*` / `net.*` string literals handed to
# obs::MetricRegistry — directly (reg.counter("serving.rounds")) or as the
# literal prefix of a composed name ("serving.model." + name). Every such
# literal in src/ is either a metric name/prefix or a fault point, and
# rule 4 already extracted the fault points — subtract them. The registry's
# own sources (src/obs/) define the API, they don't place product metrics,
# so their doc-comment examples are exempt.
metrics=$(grep -rhoE '"(serving|net|obs)\.[a-z0-9_.]+"' \
          --include='*.h' --include='*.cc' --exclude-dir=obs src/ \
          | tr -d '"' | sort -u \
          | grep -vxF -f <(printf '%s\n' "$points"))
if [[ -n "$metrics" ]]; then
  if [[ ! -f docs/OBSERVABILITY.md ]]; then
    note "rule 5: metrics are registered in src/ but docs/OBSERVABILITY.md is"
    note "missing — the metric catalog must document every registered name."
    fail=1
  else
    while IFS= read -r metric; do
      if ! grep -qF "$metric" docs/OBSERVABILITY.md; then
        note "rule 5: metric \"$metric\" is registered in src/ but absent from"
        note "the docs/OBSERVABILITY.md catalog — add a row for it."
        fail=1
      fi
    done <<< "$metrics"
  fi
fi

# ---- rule 6: cache.* metric literals are cataloged too ----------------------
# The prefix cache's metric names live under their own `cache.` namespace,
# which rule 5's prefix alternation does not cover; hold them to the same
# catalog requirement.
cache_metrics=$(grep -rhoE '"cache\.[a-z0-9_.]+"' \
                --include='*.h' --include='*.cc' --exclude-dir=obs src/ \
                | tr -d '"' | sort -u)
if [[ -n "$cache_metrics" ]]; then
  if [[ ! -f docs/OBSERVABILITY.md ]]; then
    note "rule 6: cache.* metrics are registered in src/ but"
    note "docs/OBSERVABILITY.md is missing — the catalog must document them."
    fail=1
  else
    while IFS= read -r metric; do
      if ! grep -qF "$metric" docs/OBSERVABILITY.md; then
        note "rule 6: metric \"$metric\" is registered in src/ but absent from"
        note "the docs/OBSERVABILITY.md catalog — add a row for it."
        fail=1
      fi
    done <<< "$cache_metrics"
  fi
fi

if [[ $fail -eq 0 ]]; then
  note "lint: clean (no raw sync members, no scheduler-thread throws,"
  note "every mutex guards annotated state, every fault point and every"
  note "registered metric documented)"
fi
exit $fail
