// bt_stats — pull a live server's telemetry snapshot over the wire.
//
//   bt_stats --port P [--bind A] [--traces] [--interval S] [--count N]
//
// Connects to A:P (default 127.0.0.1 — pass the address a remote server
// bound with ServerOptions::bind_addr), sends a kStatsRequest frame
// (net/protocol.h),
// and prints the server's metric-registry snapshot — one JSON object per
// pull — on stdout. --traces appends the server's sampled trace ring
// (JSONL, one record per line) after each snapshot. --interval polls every
// S seconds until interrupted (or N pulls with --count). Exit status is 0
// when every pull succeeded, 1 otherwise.
//
// The snapshot is exactly what the in-process observers report: the server
// publishes its Service/Server struct snapshots into the registry before
// serializing (docs/OBSERVABILITY.md), so counters here equal what a
// co-located caller of Service::stats() would see.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <thread>

#include "net/client.h"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port P [--bind addr] [--traces] "
               "[--interval seconds] [--count N]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 0;
  std::string bind_addr = "127.0.0.1";
  bool traces = false;
  double interval = 0.0;
  long count = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      port = static_cast<std::uint16_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--bind") {
      bind_addr = next();
    } else if (arg == "--traces") {
      traces = true;
    } else if (arg == "--interval") {
      interval = std::strtod(next(), nullptr);
      count = -1;  // poll until interrupted unless --count narrows it
    } else if (arg == "--count") {
      count = std::strtol(next(), nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "bt_stats: unknown argument '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (port == 0) {
    usage(argv[0]);
    return 2;
  }

  try {
    bt::net::ClientOptions client_opts;
    client_opts.host = bind_addr;
    bt::net::Client client(port, client_opts);
    for (long pull = 0; count < 0 || pull < count; ++pull) {
      if (pull > 0 && interval > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(interval));
      }
      bt::net::WireStats stats = client.fetch_stats(traces).get();
      std::printf("%s\n", stats.metrics_json.c_str());
      if (traces && !stats.traces_jsonl.empty()) {
        std::fputs(stats.traces_jsonl.c_str(), stdout);
      }
      std::fflush(stdout);
    }
    client.close();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bt_stats: %s\n", e.what());
    return 1;
  }
  return 0;
}
